#include "exp/shard.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

#include "common/diag.h"
#include "sim/simulator.h"

namespace tsf::exp {

namespace {

// ------------------------------------------------------------ spec digest

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void mix_bytes(std::uint64_t* h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void mix_string(std::uint64_t* h, const std::string& s) {
  const std::size_t n = s.size();
  mix_bytes(h, &n, sizeof n);
  mix_bytes(h, s.data(), s.size());
}

void mix_i64(std::uint64_t* h, std::int64_t v) { mix_bytes(h, &v, sizeof v); }

void mix_double(std::uint64_t* h, double v) { mix_bytes(h, &v, sizeof v); }

}  // namespace

std::uint64_t digest_spec(const model::SystemSpec& spec) {
  std::uint64_t h = kFnvOffset;
  mix_string(&h, spec.name);
  mix_i64(&h, spec.cores);
  mix_i64(&h, spec.horizon.ticks());
  mix_i64(&h, spec.channel_latency.count());
  mix_i64(&h, static_cast<std::int64_t>(spec.server.policy));
  mix_i64(&h, spec.server.capacity.count());
  mix_i64(&h, spec.server.period.count());
  mix_i64(&h, spec.server.priority);
  mix_i64(&h, static_cast<std::int64_t>(spec.server.queue));
  mix_i64(&h, spec.server.strict_capacity ? 1 : 0);
  mix_i64(&h, spec.server.admission_margin.count());
  for (const auto& t : spec.periodic_tasks) {
    mix_string(&h, t.name);
    mix_i64(&h, t.period.count());
    mix_i64(&h, t.cost.count());
    mix_i64(&h, t.deadline.count());
    mix_i64(&h, t.start.ticks());
    mix_i64(&h, t.priority);
    mix_i64(&h, t.affinity);
  }
  for (const auto& j : spec.aperiodic_jobs) {
    mix_string(&h, j.name);
    mix_i64(&h, j.release.ticks());
    mix_i64(&h, j.cost.count());
    mix_i64(&h, j.declared_cost.count());
    mix_i64(&h, j.relative_deadline.count());
    mix_double(&h, j.value);
    mix_i64(&h, j.affinity);
    mix_string(&h, j.fires);
    mix_i64(&h, j.triggered ? 1 : 0);
    mix_i64(&h, j.migrate ? 1 : 0);
  }
  return h;
}

// ---------------------------------------------------------------- run_cell

bool shard_forking_available() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return false;
#else
  return true;
#endif
#else
  return true;
#endif
}

CellResult run_cell(const WorkUnit& unit) {
  if (unit.crash_for_test) std::abort();
  using clock = std::chrono::steady_clock;

  // Generation is hoisted out of the timed region: materialize (and, when
  // asked, re-margin) every system first, so run_seconds measures runs.
  const auto gen_start = clock::now();
  std::vector<model::SystemSpec> specs =
      gen::RandomSystemGenerator(unit.params).generate();
  CellResult out;
  std::uint64_t digest = kFnvOffset;
  for (auto& spec : specs) {
    if (unit.admission_margin) {
      spec.server.admission_margin = *unit.admission_margin;
    }
    const std::uint64_t d = digest_spec(spec);
    mix_bytes(&digest, &d, sizeof d);
  }
  out.spec_digest = digest;
  const auto run_start = clock::now();

  std::vector<model::RunResult> runs;
  runs.reserve(specs.size());
  for (const auto& spec : specs) {
    runs.push_back(unit.mode == Mode::kSimulation
                       ? sim::simulate(spec)
                       : run_exec(spec, unit.exec_options));
  }
  out.metrics = compute_set_metrics(runs);
  const auto run_end = clock::now();
  out.gen_seconds = std::chrono::duration<double>(run_start - gen_start).count();
  out.run_seconds = std::chrono::duration<double>(run_end - run_start).count();
  return out;
}

// ------------------------------------------------------- the pipe protocol
//
// Workers pull 4-byte cell indices from one shared task pipe (writes of 4
// bytes are atomic, so concurrent readers always see whole records) and
// write two kinds of newline-terminated records on their private result
// pipe:
//
//   begin <idx>
//   cell <idx> <aart> <air> <asr> <p50> <p95> <p99> <systems> <jobs>
//        <digest> <gen_s> <run_s> sketch <alpha> <zero> <n> <idx>:<cnt>...
//
// Doubles travel as C99 hexfloats ("%a"), which strtod round-trips exactly
// — the merged metrics are bit-identical to an in-process run. The trailing
// field is the cell's response sketch (common/sketch.h text form): integer
// bucket counts, so the driver can pool cells into table-level quantiles
// that are byte-identical for any worker count. The `begin` record exists
// so a crash can be blamed on the in-flight cell.

namespace {

std::string encode_cell(std::uint32_t index, const CellResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "cell %u %a %a %a %a %a %a %zu %zu %016" PRIx64 " %a %a ",
                index, r.metrics.aart, r.metrics.air, r.metrics.asr,
                r.metrics.p50_response_tu, r.metrics.p95_response_tu,
                r.metrics.p99_response_tu, r.metrics.systems,
                r.metrics.total_jobs, r.spec_digest, r.gen_seconds,
                r.run_seconds);
  std::string out = buf;
  out += r.metrics.response_sketch.encode();
  out += '\n';
  return out;
}

bool decode_cell(const std::string& line, std::uint32_t* index,
                 CellResult* r) {
  unsigned idx = 0;
  std::uint64_t digest = 0;
  int consumed = 0;
  const int n = std::sscanf(
      line.c_str(), "cell %u %la %la %la %la %la %la %zu %zu %" SCNx64
                    " %la %la %n",
      &idx, &r->metrics.aart, &r->metrics.air, &r->metrics.asr,
      &r->metrics.p50_response_tu, &r->metrics.p95_response_tu,
      &r->metrics.p99_response_tu, &r->metrics.systems,
      &r->metrics.total_jobs, &digest, &r->gen_seconds, &r->run_seconds,
      &consumed);
  if (n != 12 || consumed <= 0 ||
      static_cast<std::size_t>(consumed) > line.size()) {
    return false;
  }
  if (!common::LogSketch::decode(line.substr(static_cast<std::size_t>(consumed)),
                                 &r->metrics.response_sketch)) {
    return false;
  }
  *index = idx;
  r->spec_digest = digest;
  return true;
}

void write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      _exit(3);  // parent vanished; nothing sensible left to do
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

[[noreturn]] void worker_main(int task_rd, int result_wr,
                              const std::vector<WorkUnit>& units) {
  for (;;) {
    std::uint32_t index = 0;
    std::size_t have = 0;
    while (have < sizeof index) {
      const ssize_t r = ::read(task_rd, reinterpret_cast<char*>(&index) + have,
                               sizeof index - have);
      if (r < 0) {
        if (errno == EINTR) continue;
        _exit(3);
      }
      if (r == 0) {
        // EOF mid-record would mean a torn task; at a record boundary it is
        // the normal "queue drained" signal.
        _exit(have == 0 ? 0 : 3);
      }
      have += static_cast<std::size_t>(r);
    }
    if (index >= units.size()) _exit(3);
    {
      char buf[32];
      const int n = std::snprintf(buf, sizeof buf, "begin %u\n", index);
      write_all(result_wr, buf, static_cast<std::size_t>(n));
    }
    const CellResult result = run_cell(units[index]);
    const std::string record = encode_cell(index, result);
    write_all(result_wr, record.data(), record.size());
  }
}

struct WorkerState {
  pid_t pid = -1;
  int result_rd = -1;
  std::string buffer;            // partial line from the result pipe
  std::int64_t in_flight = -1;   // begin'd but not yet cell'd
  bool done = false;
};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  TSF_ASSERT(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
             "fcntl(O_NONBLOCK) failed");
}

ShardOutcome run_units_serial(const std::vector<WorkUnit>& units) {
  ShardOutcome outcome;
  outcome.cells.reserve(units.size());
  for (const auto& unit : units) {
    if (unit.crash_for_test) {
      outcome.error = "worker crashed on cell '" + unit.label +
                      "' (in-process run)";
      return outcome;
    }
    outcome.cells.push_back(run_cell(unit));
  }
  outcome.ok = true;
  return outcome;
}

ShardOutcome run_units_forked(const std::vector<WorkUnit>& units, int jobs) {
  ShardOutcome outcome;

  int task_pipe[2];
  TSF_ASSERT(::pipe(task_pipe) == 0, "pipe(task) failed");
  std::vector<WorkerState> workers(static_cast<std::size_t>(jobs));
  std::vector<int> child_result_wr(workers.size(), -1);
  for (std::size_t w = 0; w < workers.size(); ++w) {
    int result_pipe[2];
    TSF_ASSERT(::pipe(result_pipe) == 0, "pipe(result) failed");
    workers[w].result_rd = result_pipe[0];
    child_result_wr[w] = result_pipe[1];
  }
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const pid_t pid = ::fork();
    TSF_ASSERT(pid >= 0, "fork failed: " << std::strerror(errno));
    if (pid == 0) {
      ::close(task_pipe[1]);
      for (std::size_t o = 0; o < workers.size(); ++o) {
        ::close(workers[o].result_rd);
        if (o != w) ::close(child_result_wr[o]);
      }
      worker_main(task_pipe[0], child_result_wr[w], units);
    }
    workers[w].pid = pid;
  }
  ::close(task_pipe[0]);
  for (const int fd : child_result_wr) ::close(fd);
  set_nonblocking(task_pipe[1]);
  for (auto& w : workers) set_nonblocking(w.result_rd);
  // A worker that dies mid-write would otherwise kill the parent.
  struct sigaction ignore_pipe = {};
  struct sigaction old_pipe = {};
  ignore_pipe.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

  std::map<std::uint32_t, CellResult> results;
  std::size_t next_task = 0;
  int task_wr = task_pipe[1];
  auto note_error = [&outcome](const std::string& message) {
    if (outcome.error.empty()) outcome.error = message;
  };

  auto consume_line = [&](WorkerState& w, const std::string& line) {
    std::uint32_t index = 0;
    CellResult cell;
    if (std::sscanf(line.c_str(), "begin %u", &index) == 1 &&
        line.rfind("begin ", 0) == 0) {
      w.in_flight = index;
      return;
    }
    if (decode_cell(line, &index, &cell)) {
      w.in_flight = -1;
      if (!results.emplace(index, cell).second) {
        note_error("cell '" + units[index].label + "' reported twice");
      }
      return;
    }
    note_error("malformed worker record: '" + line + "'");
  };

  for (;;) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> owners;
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (workers[w].done) continue;
      fds.push_back({workers[w].result_rd, POLLIN, 0});
      owners.push_back(w);
    }
    if (fds.empty()) break;  // every worker reaped
    if (task_wr >= 0) {
      if (next_task >= units.size()) {
        ::close(task_wr);
        task_wr = -1;
      } else {
        fds.push_back({task_wr, POLLOUT, 0});
      }
    }
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0 && errno == EINTR) continue;
    TSF_ASSERT(rc >= 0, "poll failed: " << std::strerror(errno));

    // Feed the task queue while there is room (4-byte writes to a pipe are
    // atomic: all-or-EAGAIN, never torn).
    if (task_wr >= 0 && (fds.back().revents & (POLLOUT | POLLERR))) {
      while (next_task < units.size()) {
        const auto index = static_cast<std::uint32_t>(next_task);
        const ssize_t w = ::write(task_wr, &index, sizeof index);
        if (w == sizeof index) {
          ++next_task;
          continue;
        }
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (w < 0 && errno == EINTR) continue;
        // EPIPE: every worker is gone; their exit statuses tell the story.
        break;
      }
    }

    for (std::size_t i = 0; i < owners.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      WorkerState& w = workers[owners[i]];
      char buf[4096];
      bool eof = false;
      for (;;) {
        const ssize_t r = ::read(w.result_rd, buf, sizeof buf);
        if (r > 0) {
          w.buffer.append(buf, static_cast<std::size_t>(r));
          continue;
        }
        if (r == 0) {
          eof = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        eof = true;
        break;
      }
      std::size_t start = 0;
      for (std::size_t nl = w.buffer.find('\n', start);
           nl != std::string::npos; nl = w.buffer.find('\n', start)) {
        consume_line(w, w.buffer.substr(start, nl - start));
        start = nl + 1;
      }
      w.buffer.erase(0, start);
      if (!eof) continue;

      ::close(w.result_rd);
      w.done = true;
      int status = 0;
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
      const bool crashed =
          WIFSIGNALED(status) || (WIFEXITED(status) && WEXITSTATUS(status) != 0);
      if (crashed) {
        std::ostringstream oss;
        oss << "worker " << w.pid << ' ';
        if (WIFSIGNALED(status)) {
          oss << "was killed by signal " << WTERMSIG(status);
        } else {
          oss << "exited with status " << WEXITSTATUS(status);
        }
        if (w.in_flight >= 0) {
          oss << " while running cell '"
              << units[static_cast<std::size_t>(w.in_flight)].label << '\'';
        }
        note_error(oss.str());
      }
    }
  }
  if (task_wr >= 0) ::close(task_wr);
  ::sigaction(SIGPIPE, &old_pipe, nullptr);

  // Every cell must have reported exactly once (a worker death can also
  // swallow a queued task whose begin record never appeared).
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (results.count(static_cast<std::uint32_t>(i)) == 0) {
      note_error("cell '" + units[i].label + "' produced no result");
    }
  }
  if (!outcome.error.empty()) return outcome;
  outcome.cells.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    outcome.cells.push_back(results[static_cast<std::uint32_t>(i)]);
  }
  outcome.ok = true;
  return outcome;
}

}  // namespace

ShardOutcome run_units(const std::vector<WorkUnit>& units,
                       const ShardOptions& options) {
  const int jobs =
      std::min<int>(options.jobs, static_cast<int>(units.size()));
  if (options.in_process || !shard_forking_available() || jobs <= 1 ||
      units.empty()) {
    return run_units_serial(units);
  }
  return run_units_forked(units, jobs);
}

bool parse_shard_flag(int argc, char** argv, int* i, ShardOptions* options) {
  if (std::strcmp(argv[*i], "--jobs") == 0) {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "--jobs needs a value\n");
      return false;
    }
    char* end = nullptr;
    const long n = std::strtol(argv[++*i], &end, 10);
    if (end == nullptr || *end != '\0' || n < 1 || n > 1024) {
      std::fprintf(stderr, "bad --jobs value '%s'\n", argv[*i]);
      return false;
    }
    options->jobs = static_cast<int>(n);
    return true;
  }
  if (std::strcmp(argv[*i], "--in-process") == 0) {
    options->in_process = true;
    return true;
  }
  std::fprintf(stderr, "unknown argument '%s'\n", argv[*i]);
  return false;
}

}  // namespace tsf::exp
