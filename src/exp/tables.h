// Reproduction driver for the paper's Tables 2-5: six parameter sets
// (taskDensity, stdDeviation) in {1,2,3} x {0,2}, ten systems each,
// seed 1983, ten server periods — under one policy and one mode.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "exp/exec_runner.h"
#include "exp/metrics.h"
#include "gen/generator.h"
#include "model/spec.h"

namespace tsf::exp {

enum class Mode {
  kSimulation,  // tsf::sim — the theoretical policies
  kExecution,   // tsf::rtsj + tsf::core — the implemented policies
};

const char* to_string(Mode mode);

struct PaperSet {
  double density = 1.0;
  double std_deviation = 0.0;
};

// The paper's six sets, in table order: (1,0) (2,0) (3,0) (1,2) (2,2) (3,2).
std::array<PaperSet, 6> paper_sets();

// GeneratorParams for one set, with the paper's fixed parameters
// (averageCost 3, capacity 4, period 6, nbGeneration 10, seed 1983).
gen::GeneratorParams paper_generator_params(const PaperSet& set,
                                            model::ServerPolicy policy);

// Runs one set and computes its metrics.
SetMetrics run_set(const gen::GeneratorParams& params, Mode mode,
                   const ExecOptions& exec_options = {});

struct WorkUnit;      // exp/shard.h — one cell of an experiment grid
struct ShardOptions;  // exp/shard.h — worker-process fan-out knobs

// Runs all six sets and renders the table in the paper's layout (AART/AIR/
// ASR rows; two banks of three columns).
struct PaperTable {
  std::string title;
  std::array<SetMetrics, 6> cells;
  // Per-cell digest of the generated systems (exp::digest_spec over the
  // cell's ten specs): identical digests across worker counts prove the
  // shards ran the same workloads.
  std::array<std::uint64_t, 6> spec_digests{};
  // Harness timing split: generating systems vs running them, summed over
  // the cells (wall-clock; never part of the machine-readable output).
  double gen_seconds = 0.0;
  double run_seconds = 0.0;
};

// The table's six cells as harness work units, labelled "<id>/(d,sd)".
std::vector<WorkUnit> paper_table_units(const std::string& table_id,
                                        model::ServerPolicy policy, Mode mode,
                                        const ExecOptions& exec_options = {});

// Runs the six cells through the sharded harness (serially in-process by
// default) and assembles the table. Panics on a harness failure — a worker
// crash names the cell.
PaperTable run_paper_table(model::ServerPolicy policy, Mode mode,
                           const ExecOptions& exec_options = {});
PaperTable run_paper_table(model::ServerPolicy policy, Mode mode,
                           const ExecOptions& exec_options,
                           const ShardOptions& shard);
std::string format_paper_table(const PaperTable& table);

}  // namespace tsf::exp
