// Lowers a model::SystemSpec onto the RTSJ-style runtime and runs it — the
// "execution" side of the paper's §6 comparison.
//
// Every aperiodic job becomes a ServableAsyncEvent fired by a OneShotTimer
// at its release instant, bound to a ServableAsyncEventHandler whose body
// consumes the job's true cost; every periodic task becomes a
// RealtimeThread. The server is built from the spec's ServerSpec.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "exp/cross_core.h"
#include "exp/overload.h"
#include "model/run_result.h"
#include "model/spec.h"
#include "rtsj/vm/vm.h"

namespace tsf::core {
class ServableAsyncEvent;
class ServableAsyncEventHandler;
class TaskServer;
struct Request;
}  // namespace tsf::core
namespace tsf::rtsj {
class OneShotTimer;
class RealtimeThread;
}  // namespace tsf::rtsj

namespace tsf::exp {

struct ExecOptions {
  // Kernel costs (timer fires, context switches, releases).
  rtsj::vm::OverheadModel kernel;
  // Framework bookkeeping charged by the server itself.
  common::Duration poll_overhead = common::Duration::zero();
  common::Duration dispatch_overhead = common::Duration::zero();
  // Execution-time jitter: each handler's *actual* demand is its declared
  // cost scaled by uniform(1 - jitter, 1 + jitter), deterministically in
  // (jitter_seed, job order). Models the paper's real-machine effect that a
  // task "overruns its WCET", one of the two interruption causes named in
  // §7. Zero disables it; the declared cost (what the server admits against)
  // is never changed.
  double cost_jitter = 0.0;
  std::uint64_t jitter_seed = 7;
  // Overload policy (exp/overload.h). kDover swaps each serving core's
  // pending queue for the D-over discipline at construction; kShed is acted
  // on by the mp layer's OverloadGovernor at epoch boundaries.
  OverloadConfig overload;
  // Burst batching ([run] batch): the server dispatches up to this many
  // pending releases under one Timed section, charging dispatch_overhead
  // once per batch. 1 reproduces per-event dispatch bit-for-bit. Ignored
  // under overload = dover (D-over's admission/LST triage is inherently
  // per-event) and by the sporadic server (per-dispatch replenishment).
  int batch = 1;
};

// One job's actual demand under ExecOptions::cost_jitter: the cost scaled
// by uniform(1 - jitter, 1 + jitter), floored at one tick. Draws from `rng`
// only when jitter is enabled, so callers' RNG streams are unaffected by
// jitterless runs. Shared by the per-core ExecSystems and the fabric-side
// job registration (migratables, ready-pool jobs) so every job sees the
// same jitter model regardless of which path releases it.
common::Duration jittered_cost(common::Rng& rng, const ExecOptions& options,
                               common::Duration cost);

// An ideal machine: every overhead zero. The residual differences from the
// simulation are then purely the policy adaptations (non-resumable
// handlers, first-fit queue).
ExecOptions ideal_execution_options();

// Overheads standing in for the paper's TimeSys RI / rtlinux testbed
// (DESIGN.md §2 documents the substitution; EXPERIMENTS.md the calibration).
ExecOptions paper_execution_options();

model::RunResult run_exec(const model::SystemSpec& spec,
                          const ExecOptions& options = {});

// One spec lowered onto one VM, with the run loop left to the caller — the
// building block behind run_exec and the per-core worlds of mp::MultiVm
// (which advances several VMs in lock-step). Lifecycle:
//
//     rtsj::vm::VirtualMachine vm(options.kernel);
//     ExecSystem system(vm, spec, options);   // builds server/threads/timers
//     system.start();                         // arms them
//     vm.run_until(...);                      // as many times as you like
//     model::RunResult result = system.collect();   // once, at the end
//
// The ExecSystem must be destroyed before its VM.
//
// As a CoreEndpoint it is also one core's terminus of the cross-core
// channel fabric (multi-core runs): `port` is where handlers whose job has a
// `fires` target post their outbound fires, and deliver_fire /
// deliver_migrated are invoked by the fabric at epoch boundaries. With a
// null port (uniprocessor run_exec), `fires` resolves locally and fires
// synchronously at handler completion.
//
// Threading contract (backend = threads): completion posting through `port`
// happens mid-epoch, concurrently with other cores' worlds — the port
// implementation must be thread-safe (mp::ThreadedRuntime hands each core a
// port staging into a lock-free MPSC mailbox). Every CoreEndpoint method,
// by contrast, is only ever invoked at an epoch boundary while all workers
// are synchronized at the barrier, so the endpoint itself needs no locks.
class ExecSystem : public CoreEndpoint {
 public:
  ExecSystem(rtsj::vm::VirtualMachine& vm, const model::SystemSpec& spec,
             const ExecOptions& options, CrossCorePort* port = nullptr);
  ~ExecSystem() override;
  ExecSystem(const ExecSystem&) = delete;
  ExecSystem& operator=(const ExecSystem&) = delete;

  void start();
  // Extracts outcomes (spec order; re-fired jobs append extra outcomes after
  // the spec-ordered block) and moves the VM's timeline out. Destructive;
  // call once after the final run_until.
  model::RunResult collect();

  // --- CoreEndpoint (called by mp::ChannelFabric / the scheduling-policy
  //     engine at epoch boundaries; TSF_BARRIER_ONLY mirrors the interface
  //     contract in exp/cross_core.h) ---
  TSF_BARRIER_ONLY
  bool deliver_fire(const std::string& job) override;
  TSF_BARRIER_ONLY
  void deliver_migrated(const MigratedJob& job) override;
  bool serves_aperiodics() const override;
  std::size_t queue_depth() const override;
  TSF_BARRIER_ONLY
  void deliver_job(const MigratedJob& job,
                   common::TimePoint release) override;
  TSF_BARRIER_ONLY
  std::optional<StolenJob> steal_pending() override;
  TSF_BARRIER_ONLY
  std::vector<StolenJob> stealable_snapshot() const override;
  TSF_BARRIER_ONLY
  std::optional<StolenJob> steal_exact(const std::string& job,
                                       common::TimePoint release) override;
  common::Duration released_cost() const override;
  TSF_BARRIER_ONLY
  bool admit_task(const model::PeriodicTaskSpec& task) override;
  TSF_BARRIER_ONLY
  std::vector<ShedCandidate> shed_candidates() const override;
  TSF_BARRIER_ONLY
  bool shed_exact(const std::string& job,
                  common::TimePoint release) override;

 private:
  // What deliver_job / steal_pending need to rebuild a job elsewhere: the
  // identity build_job was given, plus whether the work stealer may take a
  // pending release of it (spec affinity == -1; delivered jobs are always
  // unpinned by construction).
  struct JobInfo {
    common::Duration declared = common::Duration::zero();
    common::Duration actual = common::Duration::zero();
    std::string fires;
    double value = 0.0;  // scheduling value (0 = declared cost)
    bool stealable = false;
    // Firm deadline relative to release; zero = soft (never shed).
    common::Duration relative_deadline = common::Duration::zero();
  };

  const JobInfo& info_of(const core::Request& r) const;
  StolenJob to_stolen(const core::Request& r) const;
  // Builds one periodic task's RealtimeThread (body records
  // PeriodicOutcomes against task.start + k * period).
  rtsj::RealtimeThread* build_task(const model::PeriodicTaskSpec& task);
  // Builds handler + event (+ optional release timer) for one job and
  // registers the event under the job's name.
  void build_job(const std::string& name, common::Duration declared,
                 common::Duration actual, const std::string& fires,
                 bool with_timer, common::TimePoint release,
                 double value = 0.0, bool stealable = false,
                 common::Duration relative_deadline = common::Duration::zero());
  // Routes a completed handler's `fires` target: through the port when the
  // fabric is attached, synchronously otherwise.
  void fire_target(const std::string& job);

  rtsj::vm::VirtualMachine& vm_;
  model::SystemSpec spec_;
  model::RunResult result_;
  CrossCorePort* port_ = nullptr;
  std::unique_ptr<core::TaskServer> server_;
  std::vector<std::unique_ptr<rtsj::RealtimeThread>> threads_;
  std::vector<std::unique_ptr<core::ServableAsyncEventHandler>> handlers_;
  std::vector<std::unique_ptr<core::ServableAsyncEvent>> events_;
  std::vector<std::unique_ptr<rtsj::OneShotTimer>> timers_;
  std::map<std::string, core::ServableAsyncEvent*> events_by_job_;
  std::map<std::string, core::ServableAsyncEventHandler*> handlers_by_job_;
  std::map<std::string, JobInfo> job_info_;
  // Jobs a steal removed from this core's queue (and that never came
  // back): their fate is recorded by the thief core, so collect() must not
  // book the usual never-ran placeholder for them.
  std::set<std::string> stolen_away_;
};

}  // namespace tsf::exp
