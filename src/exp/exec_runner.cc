#include "exp/exec_runner.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/diag.h"
#include "common/rng.h"
#include "core/background_server.h"
#include "core/deferrable_task_server.h"
#include "core/polling_task_server.h"
#include "core/servable_async_event.h"
#include "core/sporadic_task_server.h"
#include "core/task_server.h"
#include "rtsj/realtime_thread.h"
#include "rtsj/timer.h"

namespace tsf::exp {

using common::Duration;
using common::TimePoint;

common::Duration jittered_cost(common::Rng& rng, const ExecOptions& options,
                               common::Duration cost) {
  if (options.cost_jitter <= 0.0) return cost;
  const double factor = rng.uniform(1.0 - options.cost_jitter,
                                    1.0 + options.cost_jitter);
  return common::max(common::Duration::ticks(1),
                     common::Duration::from_tu(cost.to_tu() * factor));
}

ExecOptions ideal_execution_options() { return ExecOptions{}; }

ExecOptions paper_execution_options() {
  ExecOptions o;
  // Stand-ins for the RI's costs, in virtual time: firing a timer burns
  // 0.25 tu at kernel priority, a context switch 0.02 tu, a release 0.03 tu.
  // Handler demand jitters +-15% around the declared cost. Calibrated so the
  // six-set metrics land in the paper's Table 3/5 bands (see EXPERIMENTS.md).
  o.kernel.timer_fire = Duration::ticks(250);
  o.kernel.context_switch = Duration::ticks(20);
  o.kernel.release = Duration::ticks(30);
  o.poll_overhead = Duration::ticks(40);
  o.dispatch_overhead = Duration::ticks(30);
  o.cost_jitter = 0.15;
  return o;
}

namespace {

std::unique_ptr<core::TaskServer> make_server(
    rtsj::vm::VirtualMachine& vm, const model::ServerSpec& spec,
    const ExecOptions& options) {
  core::TaskServerParameters params("server", spec.capacity, spec.period,
                                    spec.priority);
  params.set_queue_discipline(spec.queue)
      .set_strict_capacity(spec.strict_capacity)
      .set_admission_margin(spec.admission_margin)
      .set_poll_overhead(options.poll_overhead)
      .set_dispatch_overhead(options.dispatch_overhead)
      // D-over triages admission per event (its requeue path would re-run
      // the LST test and double-book the value ledger), so it pins the
      // per-event dispatch path regardless of the requested batch.
      .set_batch_limit(options.overload.mode == OverloadMode::kDover
                           ? 1
                           : options.batch);
  switch (spec.policy) {
    case model::ServerPolicy::kPolling:
      return std::make_unique<core::PollingTaskServer>(vm, params);
    case model::ServerPolicy::kDeferrable:
      return std::make_unique<core::DeferrableTaskServer>(vm, params);
    case model::ServerPolicy::kSporadic:
      return std::make_unique<core::SporadicTaskServer>(vm, params);
    case model::ServerPolicy::kBackground:
      return std::make_unique<core::BackgroundServer>(vm, params);
    case model::ServerPolicy::kNone:
      return nullptr;
  }
  TSF_PANIC("unknown server policy");
}

}  // namespace

ExecSystem::ExecSystem(rtsj::vm::VirtualMachine& vm,
                       const model::SystemSpec& spec,
                       const ExecOptions& options, CrossCorePort* port)
    : vm_(vm), spec_(spec), port_(port) {
  TSF_ASSERT(!spec_.horizon.is_never(), "exec needs a finite horizon");

  server_ = make_server(vm_, spec_.server, options);

  // Periodic tasks.
  threads_.reserve(spec_.periodic_tasks.size());
  for (const auto& t : spec_.periodic_tasks) build_task(t);

  // Steady-state reservations: size every vector that grows during the run
  // up front, so the epoch loop itself never reallocates (the zero-alloc
  // hot-path contract asserted by exec_alloc_test). Re-fires and delivered
  // jobs can exceed these, which merely degrades to amortized growth.
  std::size_t periodic_outcomes = 0;
  for (const auto& t : spec_.periodic_tasks) {
    if (t.period.is_zero() || spec_.horizon <= t.start) continue;
    periodic_outcomes += static_cast<std::size_t>(
        (spec_.horizon - t.start).count() / t.period.count()) + 1;
  }
  result_.periodic_jobs.reserve(periodic_outcomes);
  if (server_ != nullptr) {
    server_->reserve(spec_.aperiodic_jobs.size());
  }

  // Aperiodic jobs: one SAE + SAEH each; a release timer unless the job is
  // triggered (released only by a channel delivery or another job's fire).
  common::Rng jitter_rng(options.jitter_seed);
  if (server_ != nullptr) {
    for (const auto& job : spec_.aperiodic_jobs) {
      const Duration actual = jittered_cost(jitter_rng, options, job.cost);
      // The raw spec value (not effective_value): zero falls back to the
      // declared cost inside the scheduling comparators, uniformly with
      // pool/migrated jobs.
      build_job(job.name, job.effective_declared_cost(), actual, job.fires,
                /*with_timer=*/!job.triggered, job.release, job.value,
                /*stealable=*/job.affinity < 0, job.relative_deadline);
    }
  }

  // overload = dover: swap the server's pending queue for the D-over
  // discipline before anything is released. The importance ratio k is the
  // spread of value densities across this core's firm jobs — the paper's
  // parameter of the (1+sqrt(k))^2 competitive bound.
  if (server_ != nullptr &&
      options.overload.mode == OverloadMode::kDover) {
    double dmin = 0.0, dmax = 0.0;
    for (const auto& job : spec_.aperiodic_jobs) {
      if (job.relative_deadline.is_zero()) continue;
      const double cost_tu = job.effective_declared_cost().to_tu();
      if (cost_tu <= 0.0) continue;
      const double density = job.effective_value() / cost_tu;
      if (dmin == 0.0 || density < dmin) dmin = density;
      if (density > dmax) dmax = density;
    }
    core::TaskServer::DOverParams dover;
    dover.importance_ratio = dmin > 0.0 ? dmax / dmin : 1.0;
    dover.meta = [this](const core::Request& r) {
      const JobInfo& info = info_of(r);
      core::DOverQueue::JobMeta meta;
      meta.value = info.value == 0.0 ? info.declared.to_tu() : info.value;
      meta.relative_deadline = info.relative_deadline;
      return meta;
    };
    server_->enable_dover(std::move(dover));
  }
}

ExecSystem::~ExecSystem() = default;

rtsj::RealtimeThread* ExecSystem::build_task(
    const model::PeriodicTaskSpec& t) {
  threads_.push_back(std::make_unique<rtsj::RealtimeThread>(
      vm_, t.name, rtsj::PriorityParameters(t.priority),
      rtsj::PeriodicParameters(t.start, t.period, t.cost, t.deadline),
      [this, task = t](rtsj::RealtimeThread& self) {
        for (;;) {
          model::PeriodicOutcome out;
          out.task = task.name;
          out.release = task.start + task.period * self.release_index();
          self.work(task.cost);
          out.completion = self.now();
          out.deadline_missed =
              out.completion - out.release > task.effective_deadline();
          result_.periodic_jobs.push_back(out);
          self.wait_for_next_period();
        }
      }));
  return threads_.back().get();
}

void ExecSystem::build_job(const std::string& name, common::Duration declared,
                           common::Duration actual, const std::string& fires,
                           bool with_timer, common::TimePoint release,
                           double value, bool stealable,
                           common::Duration relative_deadline) {
  core::ServableAsyncEventHandler::Logic logic;
  if (fires.empty()) {
    logic = [actual](rtsj::Timed& timed) { timed.work(actual); };
  } else {
    // The fire happens only on completion: an interrupted handler (Timed
    // budget exhausted) unwinds before reaching it, so a half-served job
    // never signals downstream work.
    logic = [this, actual, fires](rtsj::Timed& timed) {
      timed.work(actual);
      fire_target(fires);
    };
  }
  handlers_.push_back(std::make_unique<core::ServableAsyncEventHandler>(
      name, declared, std::move(logic)));
  handlers_.back()->set_server(server_.get());
  events_.push_back(
      std::make_unique<core::ServableAsyncEvent>(vm_, name + ".e"));
  events_.back()->add_handler(handlers_.back().get());
  events_by_job_[name] = events_.back().get();
  handlers_by_job_[name] = handlers_.back().get();
  job_info_[name] =
      JobInfo{declared, actual, fires, value, stealable, relative_deadline};
  if (with_timer) {
    timers_.push_back(std::make_unique<rtsj::OneShotTimer>(
        vm_, release, events_.back().get()));
  }
}

void ExecSystem::fire_target(const std::string& job) {
  if (port_ != nullptr) {
    port_->fire_remote(job, vm_.now());
    return;
  }
  // No fabric: resolve locally; a target living outside this world (a solo
  // re-run of one core's sub-spec) simply has nobody listening.
  auto it = events_by_job_.find(job);
  if (it != events_by_job_.end()) it->second->fire();
}

bool ExecSystem::deliver_fire(const std::string& job) {
  auto it = events_by_job_.find(job);
  if (it == events_by_job_.end()) return false;
  it->second->fire();
  return true;
}

void ExecSystem::deliver_migrated(const MigratedJob& job) {
  TSF_ASSERT(server_ != nullptr,
             "migrated job " << job.name << " delivered to a serverless core");
  TSF_ASSERT(events_by_job_.find(job.name) == events_by_job_.end(),
             "migrated job " << job.name << " delivered twice");
  build_job(job.name, job.declared_cost, job.actual_cost, job.fires,
            /*with_timer=*/false, common::TimePoint::origin(), job.value,
            /*stealable=*/true, job.relative_deadline);
  events_by_job_[job.name]->fire();
}

bool ExecSystem::serves_aperiodics() const { return server_ != nullptr; }

std::size_t ExecSystem::queue_depth() const {
  return server_ != nullptr ? server_->pending_count() : 0;
}

void ExecSystem::deliver_job(const MigratedJob& job,
                             common::TimePoint release) {
  TSF_ASSERT(server_ != nullptr,
             "job " << job.name << " delivered to a serverless core");
  // A re-delivery (a job stolen to this core twice, or stolen back) reuses
  // the handler already built here; costs are identical by construction.
  if (handlers_by_job_.find(job.name) == handlers_by_job_.end()) {
    build_job(job.name, job.declared_cost, job.actual_cost, job.fires,
              /*with_timer=*/false, release, job.value, /*stealable=*/true,
              job.relative_deadline);
  }
  stolen_away_.erase(job.name);  // stolen back: this core owns a release again
  // Release directly through the server with the preserved instant: the
  // event's own fire() would stamp the VM clock and lose the original
  // release (and with it the honest response time and the (job, release)
  // dedupe key merge_results relies on).
  server_->servable_event_released(handlers_by_job_[job.name], release);
}

const ExecSystem::JobInfo& ExecSystem::info_of(
    const core::Request& r) const {
  auto it = job_info_.find(r.handler->name());
  TSF_ASSERT(it != job_info_.end(),
             "pending request for unknown job " << r.handler->name());
  return it->second;
}

StolenJob ExecSystem::to_stolen(const core::Request& r) const {
  const JobInfo& info = info_of(r);
  StolenJob stolen;
  stolen.job.name = r.handler->name();
  stolen.job.declared_cost = info.declared;
  stolen.job.actual_cost = info.actual;
  stolen.job.fires = info.fires;
  stolen.job.value = info.value;
  stolen.job.relative_deadline = info.relative_deadline;
  stolen.release = r.release;
  return stolen;
}

std::optional<StolenJob> ExecSystem::steal_pending() {
  if (server_ == nullptr) return std::nullopt;
  auto request = server_->steal_pending_request(
      [&](const core::Request& r) { return info_of(r).stealable; },
      [&](const core::Request& a, const core::Request& b) {
        const JobInfo& ia = info_of(a);
        const JobInfo& ib = info_of(b);
        const double va = ia.value == 0.0 ? ia.declared.to_tu() : ia.value;
        const double vb = ib.value == 0.0 ? ib.declared.to_tu() : ib.value;
        return schedules_before(va, a.release, a.handler->name(), vb,
                                b.release, b.handler->name());
      });
  if (!request.has_value()) return std::nullopt;
  stolen_away_.insert(request->handler->name());
  return to_stolen(*request);
}

std::vector<StolenJob> ExecSystem::stealable_snapshot() const {
  std::vector<StolenJob> out;
  if (server_ == nullptr) return out;
  const common::TimePoint now = vm_.now();
  server_->visit_pending([&](const core::Request& r) {
    // Same reach as steal_pending: stealable jobs whose release is
    // strictly earlier than the current (boundary) instant — a
    // boundary-coincident release is still mid-bind.
    if (r.release < now && info_of(r).stealable) out.push_back(to_stolen(r));
  });
  return out;
}

std::optional<StolenJob> ExecSystem::steal_exact(const std::string& job,
                                                 common::TimePoint release) {
  if (server_ == nullptr) return std::nullopt;
  auto request = server_->steal_pending_request(
      [&](const core::Request& r) {
        return r.handler->name() == job && r.release == release &&
               info_of(r).stealable;
      },
      [](const core::Request& a, const core::Request& b) {
        return a.seq < b.seq;  // two identical (job, release): oldest first
      });
  if (!request.has_value()) return std::nullopt;
  stolen_away_.insert(request->handler->name());
  return to_stolen(*request);
}

common::Duration ExecSystem::released_cost() const {
  return server_ != nullptr ? server_->released_cost() : common::Duration::zero();
}

std::vector<CoreEndpoint::ShedCandidate> ExecSystem::shed_candidates() const {
  std::vector<ShedCandidate> out;
  if (server_ == nullptr) return out;
  const common::TimePoint now = vm_.now();
  server_->visit_pending([&](const core::Request& r) {
    // Sheddable = firm (carries a deadline) and released strictly before
    // this boundary instant — a boundary-coincident release is still
    // mid-bind, exactly like the steal guard.
    const JobInfo& info = info_of(r);
    if (info.relative_deadline.is_zero() || r.release >= now) return;
    ShedCandidate c;
    c.job = r.handler->name();
    c.release = r.release;
    c.declared_cost = info.declared;
    c.value = info.value == 0.0 ? info.declared.to_tu() : info.value;
    c.relative_deadline = info.relative_deadline;
    out.push_back(std::move(c));
  });
  return out;
}

bool ExecSystem::shed_exact(const std::string& job,
                            common::TimePoint release) {
  if (server_ == nullptr) return false;
  return server_->shed_pending_request(job, release);
}

bool ExecSystem::admit_task(const model::PeriodicTaskSpec& task) {
  TSF_ASSERT(task.start >= vm_.now(),
             "task " << task.name << " admitted with a start in the past");
  // Only ever called mid-run (the rebalancer's admission pass fires at
  // epoch boundaries, after start()), so the new thread is started here —
  // it parks until task.start on its own.
  build_task(task)->start();
  return true;
}

void ExecSystem::start() {
  for (auto& timer : timers_) timer->start();
  if (server_ != nullptr) server_->start();
  for (auto& t : threads_) t->start();
}

model::RunResult ExecSystem::collect() {
  // Collect outcomes in spec order; anything the server never saw (or that
  // has no server at all) counts as released-but-unserved. A job can have
  // several outcomes (a triggered job fired more than once), so group by
  // name: the first release fills the spec-ordered slot, the rest — plus
  // jobs that aren't in this core's spec at all (migrated in mid-run) —
  // are appended after the spec-ordered block, in name order.
  std::map<std::string, std::vector<model::JobOutcome>> by_name;
  if (server_ != nullptr) {
    for (auto& o : server_->final_outcomes()) {
      by_name[o.name].push_back(o);
    }
    result_.server_activations = server_->activation_count();
    result_.server_dispatches = server_->dispatch_count();
    result_.shed_events = server_->shed_events();
  }
  result_.jobs.reserve(spec_.aperiodic_jobs.size());
  for (const auto& job : spec_.aperiodic_jobs) {
    auto it = by_name.find(job.name);
    if (it != by_name.end() && !it->second.empty()) {
      result_.jobs.push_back(std::move(it->second.front()));
      it->second.erase(it->second.begin());
    } else if (stolen_away_.count(job.name) == 0) {
      // Never released (includes a triggered job that was never fired):
      // recorded against its nominal release, served == false. Jobs a
      // steal moved to another core are skipped — the thief books them.
      model::JobOutcome o;
      o.name = job.name;
      o.release = job.release;
      o.cost = job.cost;
      result_.jobs.push_back(o);
    }
  }
  for (auto& [name, extras] : by_name) {
    for (auto& o : extras) result_.jobs.push_back(std::move(o));
  }
  result_.timeline = std::move(vm_.timeline());
  return std::move(result_);
}

model::RunResult run_exec(const model::SystemSpec& spec,
                          const ExecOptions& options) {
  rtsj::vm::VirtualMachine vm(options.kernel);
  ExecSystem system(vm, spec, options);
  system.start();
  vm.run_until(spec.horizon);
  return system.collect();
}

}  // namespace tsf::exp
