// Overload policy configuration, shared by the exec runner (which enables
// the D-over pending-queue discipline per core) and the mp layer (whose
// OverloadGovernor sheds at epoch boundaries). Spec key:
//
//   [run] overload = off | shed | dover
//         overload_threshold = 0.75   # utilization above which `shed` drops
//         overload_period = 6         # governor window / pass period, tu
//
// `off`   — serve everything the queue discipline accepts (the baseline).
// `shed`  — utilization-based admission control: at each epoch boundary a
//           core whose measured utilization exceeds the threshold drops
//           pending firm work in lowest-value-density-first order.
// `dover` — Koren & Shasha's D-over discipline as the per-core pending
//           queue: privileged-set feasibility test on arrival plus the LST
//           takeover rule, 1/(1+sqrt(k))^2 competitive on value accrual.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/time.h"

namespace tsf::exp {

enum class OverloadMode {
  kOff,
  kShed,
  kDover,
};

const char* to_string(OverloadMode mode);
std::optional<OverloadMode> parse_overload_mode(std::string_view name);

struct OverloadConfig {
  OverloadMode mode = OverloadMode::kOff;
  // `shed`: measured utilization above which a core sheds; also the target
  // the governor sheds down to.
  double threshold = 0.75;
  // Sliding measurement window and minimum spacing between governor passes.
  common::Duration period = common::Duration::time_units(6);

  bool enabled() const { return mode != OverloadMode::kOff; }
};

}  // namespace tsf::exp
