// Shared flag vocabulary of the bench/tool mains.
//
// Every bench used to hand-roll the same three argv loops: --json FILE
// (tsf-bench/1 emission for the CI regression gate), --jobs N /
// --in-process (the sharded experiment harness, exp/shard.h) and --batch N
// (dispatch batching on the exec engines). Each main declares which groups
// it understands; consume() recognizes exactly those, and the usage/error
// reporting is one code path for every bench instead of a copy per main.
//
// Usage:
//     exp::BenchCli cli(exp::BenchCli::kJson | exp::BenchCli::kShard);
//     for (int i = 1; i < argc; ++i) {
//       if (!cli.consume(argc, argv, &i)) return cli.fail("bench_foo");
//     }
//
// A main with flags of its own checks them first and delegates the rest
// (the way tools/tsf_tables.cc does).
#pragma once

#include <string>

#include "exp/shard.h"

namespace tsf::exp {

class BenchCli {
 public:
  enum Flags : unsigned {
    kJson = 1u << 0,   // --json FILE
    kShard = 1u << 1,  // --jobs N, --in-process
    kBatch = 1u << 2,  // --batch N
  };

  explicit BenchCli(unsigned flags) : flags_(flags) {}

  // Tries to consume argv[*i] as one of the enabled shared flags,
  // advancing *i past the flag's value. False on an unknown flag or a
  // malformed value — the caller reports it through fail() and exits.
  bool consume(int argc, char** argv, int* i);

  // Prints the error (if any) and the usage line to stderr, and returns
  // the conventional exit code 2 so mains can `return cli.fail(...)`.
  // `extra_usage` appends bench-specific flags to the usage line.
  int fail(const char* prog, const char* extra_usage = "") const;

  ShardOptions shard;
  std::string json_path;
  int batch = 1;

 private:
  unsigned flags_;
  std::string error_;
};

}  // namespace tsf::exp
