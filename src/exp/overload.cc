#include "exp/overload.h"

namespace tsf::exp {

const char* to_string(OverloadMode mode) {
  switch (mode) {
    case OverloadMode::kOff:
      return "off";
    case OverloadMode::kShed:
      return "shed";
    case OverloadMode::kDover:
      return "dover";
  }
  return "?";
}

std::optional<OverloadMode> parse_overload_mode(std::string_view name) {
  if (name == "off") return OverloadMode::kOff;
  if (name == "shed") return OverloadMode::kShed;
  if (name == "dover") return OverloadMode::kDover;
  return std::nullopt;
}

}  // namespace tsf::exp
