// Sharded experiment harness: the paper's tables and the ablation grids are
// grids of independent cells (one parameter set under one policy and mode),
// so they parallelize perfectly. A WorkUnit is one cell; run_units fans the
// cells out across fork()ed worker processes that pull cell indices from a
// shared task pipe and stream results back over per-worker result pipes,
// then merges the SetMetrics back in canonical cell order. Metrics cross
// the pipe in hexfloat, so the merged results are bit-identical to an
// in-process run regardless of worker count or completion order — the
// property the paper-tables CI job checks byte-for-byte on the JSON.
//
// Generation is hoisted out of the measured region: each worker first
// materializes the cell's systems (recording gen_seconds), then runs them
// (run_seconds), and digests the generated specs so callers can assert that
// every shard layout generated exactly the same systems.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/tables.h"

namespace tsf::exp {

// One independent cell of an experiment grid. The whole unit lives in the
// parent's memory before the fork — only results cross the pipe.
struct WorkUnit {
  // Names the cell in errors, progress and JSON, e.g. "table2/(1,0)".
  std::string label;
  gen::GeneratorParams params;
  Mode mode = Mode::kSimulation;
  ExecOptions exec_options;
  // When set, applied to every generated spec before the run (the §7
  // interruption-avoidance margin the ablation sweeps).
  std::optional<common::Duration> admission_margin;
  // Test hook for the crash-surfacing path: the worker aborts instead of
  // running the cell.
  bool crash_for_test = false;
};

struct CellResult {
  SetMetrics metrics;
  // FNV-1a over every generated spec (names, releases, costs, server,
  // tasks): equal digests mean equal workloads, however the cells were
  // sharded.
  std::uint64_t spec_digest = 0;
  // Untimed-vs-timed split: generating the systems vs running them.
  double gen_seconds = 0.0;
  double run_seconds = 0.0;
};

struct ShardOptions {
  // Worker processes; <= 1 runs the cells serially in-process.
  int jobs = 1;
  // Forces the serial in-process path even when jobs > 1 (sanitized builds
  // fork poorly; run_units also falls back on its own under ASan/TSan).
  bool in_process = false;
};

struct ShardOutcome {
  bool ok = false;
  // Human-readable failure naming the cell (worker crash, lost result).
  std::string error;
  // One result per unit, in unit order. Only meaningful when ok.
  std::vector<CellResult> cells;
};

// Whether run_units will actually fork for jobs > 1 in this build (false
// under ASan/TSan, where the fallback runs everything in-process).
bool shard_forking_available();

// Deterministic digest of one spec's workload-defining fields.
std::uint64_t digest_spec(const model::SystemSpec& spec);

// Runs one cell in this process: generate (untimed), run, measure.
// A crash_for_test unit returns an error through ShardOutcome when called
// via run_units' in-process path; calling run_cell on it directly aborts.
CellResult run_cell(const WorkUnit& unit);

// Runs every unit and returns results in unit order. Worker failures (a
// crashed or nonzero-exiting worker, a cell that never reported) fail the
// whole run with the cell named.
ShardOutcome run_units(const std::vector<WorkUnit>& units,
                       const ShardOptions& options = {});

// `--jobs N` / `--in-process` from a bench/tool argv. Returns false (with a
// message on stderr) on a malformed value or an argument it doesn't know.
// Bench mains should prefer exp::BenchCli (exp/bench_cli.h), which folds
// this into the shared flag vocabulary with one usage/error path.
bool parse_shard_flag(int argc, char** argv, int* i, ShardOptions* options);

}  // namespace tsf::exp
