#include "exp/metrics.h"

#include <algorithm>
#include <vector>

#include "common/stats.h"

namespace tsf::exp {

RunMetrics compute_run_metrics(const model::RunResult& run) {
  RunMetrics m;
  common::Accumulator responses;
  common::QuantileReservoir tail;  // unbounded: runs are small, stay exact
  for (const auto& job : run.jobs) {
    ++m.released;
    if (job.served) {
      ++m.served;
      responses.add(job.response().to_tu());
      tail.add(job.response().to_tu());
    }
    if (job.interrupted) ++m.interrupted;
  }
  m.mean_response_tu = responses.mean();
  m.p99_response_tu = tail.p99();
  if (m.released > 0) {
    m.interrupted_ratio = static_cast<double>(m.interrupted) /
                          static_cast<double>(m.released);
    m.served_ratio =
        static_cast<double>(m.served) / static_cast<double>(m.released);
  }
  return m;
}

SetMetrics compute_set_metrics(const std::vector<model::RunResult>& runs) {
  SetMetrics set;
  common::Accumulator aart, air, asr;
  common::QuantileReservoir tail;
  for (const auto& run : runs) {
    const RunMetrics m = compute_run_metrics(run);
    ++set.systems;
    set.total_jobs += m.released;
    if (m.served > 0) aart.add(m.mean_response_tu);
    if (m.released > 0) {
      air.add(m.interrupted_ratio);
      asr.add(m.served_ratio);
    }
    for (const auto& job : run.jobs) {
      if (job.served) tail.add(job.response().to_tu());
    }
  }
  set.aart = aart.mean();
  set.air = air.mean();
  set.asr = asr.mean();
  set.p99_response_tu = tail.p99();
  return set;
}

ResponseDistribution compute_response_distribution(
    const std::vector<model::RunResult>& runs) {
  common::Accumulator acc;
  common::QuantileReservoir quantiles;
  for (const auto& run : runs) {
    for (const auto& job : run.jobs) {
      if (job.served) {
        acc.add(job.response().to_tu());
        quantiles.add(job.response().to_tu());
      }
    }
  }
  ResponseDistribution d;
  d.samples = acc.count();
  if (acc.empty()) return d;
  d.mean_tu = acc.mean();
  d.p50_tu = quantiles.p50();
  d.p90_tu = quantiles.quantile(0.90);
  d.p99_tu = quantiles.p99();
  d.max_tu = acc.max();
  return d;
}

}  // namespace tsf::exp
