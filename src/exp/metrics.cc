#include "exp/metrics.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"

namespace tsf::exp {

RunMetrics compute_run_metrics(const model::RunResult& run) {
  RunMetrics m;
  common::Accumulator responses;
  common::QuantileReservoir tail;  // unbounded: runs are small, stay exact
  for (const auto& job : run.jobs) {
    ++m.released;
    if (job.served) {
      ++m.served;
      responses.add(job.response().to_tu());
      tail.add(job.response().to_tu());
    }
    if (job.interrupted) ++m.interrupted;
  }
  m.mean_response_tu = responses.mean();
  m.p99_response_tu = tail.p99();
  if (m.released > 0) {
    m.interrupted_ratio = static_cast<double>(m.interrupted) /
                          static_cast<double>(m.released);
    m.served_ratio =
        static_cast<double>(m.served) / static_cast<double>(m.released);
  }
  return m;
}

SetMetrics compute_set_metrics(const std::vector<model::RunResult>& runs) {
  SetMetrics set;
  common::Accumulator aart, air, asr;
  for (const auto& run : runs) {
    const RunMetrics m = compute_run_metrics(run);
    ++set.systems;
    set.total_jobs += m.released;
    if (m.served > 0) aart.add(m.mean_response_tu);
    if (m.released > 0) {
      air.add(m.interrupted_ratio);
      asr.add(m.served_ratio);
    }
    for (const auto& job : run.jobs) {
      if (job.served) set.response_sketch.add(job.response().to_tu());
    }
  }
  set.aart = aart.mean();
  set.air = air.mean();
  set.asr = asr.mean();
  set.p50_response_tu = set.response_sketch.p50();
  set.p95_response_tu = set.response_sketch.p95();
  set.p99_response_tu = set.response_sketch.p99();
  return set;
}

ResponseDistribution compute_response_distribution(
    const std::vector<model::RunResult>& runs) {
  common::Accumulator acc;
  common::QuantileReservoir quantiles;
  for (const auto& run : runs) {
    for (const auto& job : run.jobs) {
      if (job.served) {
        acc.add(job.response().to_tu());
        quantiles.add(job.response().to_tu());
      }
    }
  }
  ResponseDistribution d;
  d.samples = acc.count();
  if (acc.empty()) return d;
  d.mean_tu = acc.mean();
  d.p50_tu = quantiles.p50();
  d.p90_tu = quantiles.quantile(0.90);
  d.p99_tu = quantiles.p99();
  d.max_tu = acc.max();
  return d;
}

ChannelMetrics compute_channel_metrics(
    const std::vector<ChannelDelivery>& deliveries,
    const model::RunResult& merged) {
  ChannelMetrics m;
  common::Accumulator latency;
  common::QuantileReservoir latency_q;
  common::QuantileReservoir e2e_q;
  common::Accumulator sched_wait;
  common::QuantileReservoir sched_wait_q;

  // A channel delivery at instant t released its job at t (the fire lands
  // straight in the server's pending queue), so match (name, release ==
  // delivered) to find the served completion for end-to-end time. Pool
  // dispatches and steals are *not* channel messages: their posted →
  // completion span equals the job's ordinary response time (the outcome
  // keeps the original release), which the response distribution already
  // reports — so they contribute only their counts and wait distribution
  // here, never to latency_* or e2e_*.
  std::map<std::string, std::vector<const model::JobOutcome*>> outcomes;
  for (const auto& job : merged.jobs) outcomes[job.name].push_back(&job);

  for (const auto& d : deliveries) {
    if (d.kind == ChannelDelivery::Kind::kShed) {
      ++m.sheds;
      continue;
    }
    if (d.kind == ChannelDelivery::Kind::kTakeover) {
      ++m.takeovers;
      continue;
    }
    if (d.kind == ChannelDelivery::Kind::kPool ||
        d.kind == ChannelDelivery::Kind::kSteal ||
        d.kind == ChannelDelivery::Kind::kRebalance) {
      // A failed pool dispatch (no serving core anywhere) is a scheduler
      // placement failure, not a channel failure — it must not inflate the
      // 'cross-core channels: N failed' line. The job stays visible as an
      // unserved outcome in the merged result.
      if (!d.ok) continue;
      if (d.kind == ChannelDelivery::Kind::kPool) ++m.pool_dispatches;
      if (d.kind == ChannelDelivery::Kind::kSteal) ++m.steals;
      if (d.kind == ChannelDelivery::Kind::kRebalance) {
        // from_core == kNoCore marks an online admission (no queue wait by
        // construction); anything else is a pending-job migration.
        if (d.from_core == ChannelDelivery::kNoCore) {
          ++m.rebalance_admissions;
          continue;
        }
        ++m.rebalance_migrations;
      }
      sched_wait.add(d.latency().to_tu());
      sched_wait_q.add(d.latency().to_tu());
      continue;
    }
    if (!d.ok) {
      ++m.failed;
      continue;
    }
    ++m.delivered;
    latency.add(d.latency().to_tu());
    latency_q.add(d.latency().to_tu());
    auto it = outcomes.find(d.job);
    if (it == outcomes.end()) continue;
    auto& candidates = it->second;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i]->release == d.delivered && candidates[i]->served) {
        e2e_q.add((candidates[i]->completion - d.posted).to_tu());
        ++m.e2e_samples;
        // Consume the outcome so two same-instant deliveries of one job
        // don't both claim it.
        candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  m.latency_mean_tu = latency.mean();
  m.latency_p50_tu = latency_q.p50();
  m.latency_p95_tu = latency_q.p95();
  m.latency_p99_tu = latency_q.p99();
  m.e2e_p50_tu = e2e_q.p50();
  m.e2e_p95_tu = e2e_q.p95();
  m.e2e_p99_tu = e2e_q.p99();
  m.sched_wait_mean_tu = sched_wait.mean();
  m.sched_wait_p99_tu = sched_wait_q.p99();
  return m;
}

}  // namespace tsf::exp
