#include "exp/metrics.h"

#include <algorithm>
#include <vector>

#include "common/stats.h"

namespace tsf::exp {

RunMetrics compute_run_metrics(const model::RunResult& run) {
  RunMetrics m;
  common::Accumulator responses;
  for (const auto& job : run.jobs) {
    ++m.released;
    if (job.served) {
      ++m.served;
      responses.add(job.response().to_tu());
    }
    if (job.interrupted) ++m.interrupted;
  }
  m.mean_response_tu = responses.mean();
  if (m.released > 0) {
    m.interrupted_ratio = static_cast<double>(m.interrupted) /
                          static_cast<double>(m.released);
    m.served_ratio =
        static_cast<double>(m.served) / static_cast<double>(m.released);
  }
  return m;
}

SetMetrics compute_set_metrics(const std::vector<model::RunResult>& runs) {
  SetMetrics set;
  common::Accumulator aart, air, asr;
  for (const auto& run : runs) {
    const RunMetrics m = compute_run_metrics(run);
    ++set.systems;
    set.total_jobs += m.released;
    if (m.served > 0) aart.add(m.mean_response_tu);
    if (m.released > 0) {
      air.add(m.interrupted_ratio);
      asr.add(m.served_ratio);
    }
  }
  set.aart = aart.mean();
  set.air = air.mean();
  set.asr = asr.mean();
  return set;
}

ResponseDistribution compute_response_distribution(
    const std::vector<model::RunResult>& runs) {
  std::vector<double> responses;
  for (const auto& run : runs) {
    for (const auto& job : run.jobs) {
      if (job.served) responses.push_back(job.response().to_tu());
    }
  }
  ResponseDistribution d;
  d.samples = responses.size();
  if (responses.empty()) return d;
  std::sort(responses.begin(), responses.end());
  double sum = 0.0;
  for (double r : responses) sum += r;
  d.mean_tu = sum / static_cast<double>(responses.size());
  const auto at = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(responses.size() - 1));
    return responses[idx];
  };
  d.p50_tu = at(0.50);
  d.p90_tu = at(0.90);
  d.p99_tu = at(0.99);
  d.max_tu = responses.back();
  return d;
}

}  // namespace tsf::exp
