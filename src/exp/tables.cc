#include "exp/tables.h"

#include <cstdio>
#include <sstream>

#include "common/diag.h"
#include "common/table.h"
#include "exp/shard.h"
#include "sim/simulator.h"

namespace tsf::exp {

const char* to_string(Mode mode) {
  return mode == Mode::kSimulation ? "simulation" : "execution";
}

std::array<PaperSet, 6> paper_sets() {
  return {PaperSet{1, 0}, PaperSet{2, 0}, PaperSet{3, 0},
          PaperSet{1, 2}, PaperSet{2, 2}, PaperSet{3, 2}};
}

gen::GeneratorParams paper_generator_params(const PaperSet& set,
                                            model::ServerPolicy policy) {
  gen::GeneratorParams p;
  p.task_density = set.density;
  p.average_cost_tu = 3.0;
  p.std_deviation_tu = set.std_deviation;
  p.server_capacity = common::Duration::time_units(4);
  p.server_period = common::Duration::time_units(6);
  p.nb_generation = 10;
  p.seed = 1983;
  p.horizon_periods = 10;
  p.policy = policy;
  return p;
}

SetMetrics run_set(const gen::GeneratorParams& params, Mode mode,
                   const ExecOptions& exec_options) {
  gen::RandomSystemGenerator generator(params);
  std::vector<model::RunResult> runs;
  for (const auto& spec : generator.generate()) {
    runs.push_back(mode == Mode::kSimulation ? sim::simulate(spec)
                                             : run_exec(spec, exec_options));
  }
  return compute_set_metrics(runs);
}

std::vector<WorkUnit> paper_table_units(const std::string& table_id,
                                        model::ServerPolicy policy, Mode mode,
                                        const ExecOptions& exec_options) {
  std::vector<WorkUnit> units;
  units.reserve(6);
  for (const auto& set : paper_sets()) {
    WorkUnit unit;
    char label[64];
    std::snprintf(label, sizeof label, "%s/(%g,%g)", table_id.c_str(),
                  set.density, set.std_deviation);
    unit.label = label;
    unit.params = paper_generator_params(set, policy);
    unit.mode = mode;
    unit.exec_options = exec_options;
    units.push_back(std::move(unit));
  }
  return units;
}

PaperTable run_paper_table(model::ServerPolicy policy, Mode mode,
                           const ExecOptions& exec_options) {
  return run_paper_table(policy, mode, exec_options, ShardOptions{});
}

PaperTable run_paper_table(model::ServerPolicy policy, Mode mode,
                           const ExecOptions& exec_options,
                           const ShardOptions& shard) {
  PaperTable table;
  std::ostringstream title;
  title << "Measures on " << model::to_string(policy) << " server "
        << to_string(mode) << "s";
  table.title = title.str();
  const auto units =
      paper_table_units(model::to_string(policy), policy, mode, exec_options);
  const ShardOutcome outcome = run_units(units, shard);
  TSF_ASSERT(outcome.ok, "paper table harness failed: " << outcome.error);
  for (std::size_t i = 0; i < table.cells.size(); ++i) {
    table.cells[i] = outcome.cells[i].metrics;
    table.spec_digests[i] = outcome.cells[i].spec_digest;
    table.gen_seconds += outcome.cells[i].gen_seconds;
    table.run_seconds += outcome.cells[i].run_seconds;
  }
  return table;
}

std::string format_paper_table(const PaperTable& table) {
  const auto sets = paper_sets();
  std::ostringstream oss;
  oss << table.title << '\n';
  for (int bank = 0; bank < 2; ++bank) {
    common::TextTable t;
    std::vector<std::string> header = {""};
    for (int c = 0; c < 3; ++c) {
      const auto& s = sets[static_cast<std::size_t>(bank * 3 + c)];
      std::ostringstream h;
      h << '(' << s.density << ", " << s.std_deviation << ')';
      header.push_back(h.str());
    }
    t.add_row(header);
    std::vector<std::string> aart = {"AART"}, air = {"AIR"}, asr = {"ASR"};
    for (int c = 0; c < 3; ++c) {
      const auto& m = table.cells[static_cast<std::size_t>(bank * 3 + c)];
      aart.push_back(common::fmt_fixed(m.aart, 2));
      air.push_back(common::fmt_fixed(m.air, 2));
      asr.push_back(common::fmt_fixed(m.asr, 2));
    }
    t.add_row(aart);
    t.add_row(air);
    t.add_row(asr);
    oss << t.to_string();
    if (bank == 0) oss << '\n';
  }
  return oss.str();
}

}  // namespace tsf::exp
