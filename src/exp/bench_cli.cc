#include "exp/bench_cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tsf::exp {

bool BenchCli::consume(int argc, char** argv, int* i) {
  const char* arg = argv[*i];
  const auto value = [&](const char* flag) -> const char* {
    if (*i + 1 >= argc) {
      error_ = std::string(flag) + " needs a value";
      return nullptr;
    }
    return argv[++*i];
  };
  const auto count = [&](const char* flag, long min, long max,
                         int* dst) -> bool {
    const char* v = value(flag);
    if (v == nullptr) return false;
    char* end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end == nullptr || *end != '\0' || n < min || n > max) {
      error_ = std::string("bad ") + flag + " value '" + v + "'";
      return false;
    }
    *dst = static_cast<int>(n);
    return true;
  };

  if ((flags_ & kJson) != 0 && std::strcmp(arg, "--json") == 0) {
    const char* v = value("--json");
    if (v == nullptr) return false;
    json_path = v;
    return true;
  }
  if ((flags_ & kShard) != 0 && std::strcmp(arg, "--jobs") == 0) {
    return count("--jobs", 1, 1024, &shard.jobs);
  }
  if ((flags_ & kShard) != 0 && std::strcmp(arg, "--in-process") == 0) {
    shard.in_process = true;
    return true;
  }
  if ((flags_ & kBatch) != 0 && std::strcmp(arg, "--batch") == 0) {
    return count("--batch", 1, 1 << 20, &batch);
  }
  error_ = std::string("unknown argument '") + arg + "'";
  return false;
}

int BenchCli::fail(const char* prog, const char* extra_usage) const {
  if (!error_.empty()) std::fprintf(stderr, "%s\n", error_.c_str());
  std::string usage = std::string("usage: ") + prog;
  if ((flags_ & kJson) != 0) usage += " [--json FILE]";
  if ((flags_ & kShard) != 0) usage += " [--jobs N] [--in-process]";
  if ((flags_ & kBatch) != 0) usage += " [--batch N]";
  usage += extra_usage;
  std::fprintf(stderr, "%s\n", usage.c_str());
  return 2;
}

}  // namespace tsf::exp
