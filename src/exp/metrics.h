// The paper's §6.1 metrics over a set of runs:
//
//   "We measure the average response time of aperiodics, the
//    interrupted-aperiodics ratio and the served-aperiodics ratio for each
//    execution and simulation. Then we compute for each set the average of
//    the average-response-times (AART), the average of the
//    interrupted-aperiodics ratios (AIR) and the average of the
//    served-aperiodics ratios (ASR)."
#pragma once

#include <cstddef>
#include <vector>

#include "common/sketch.h"
#include "exp/cross_core.h"
#include "model/run_result.h"

namespace tsf::exp {

struct RunMetrics {
  double mean_response_tu = 0.0;  // over served jobs only
  double p99_response_tu = 0.0;   // tail latency over served jobs; 0 if none
  double interrupted_ratio = 0.0;
  double served_ratio = 0.0;
  std::size_t released = 0;
  std::size_t served = 0;
  std::size_t interrupted = 0;
};

struct SetMetrics {
  double aart = 0.0;
  double air = 0.0;
  double asr = 0.0;
  // Quantiles of the served responses pooled across every run in the set
  // (not averages of per-run quantiles — tail latency doesn't average
  // meaningfully). Derived from response_sketch, so two sets' quantiles can
  // be pooled exactly by merging their sketches.
  double p50_response_tu = 0.0;
  double p95_response_tu = 0.0;
  double p99_response_tu = 0.0;
  // Mergeable distribution of every served response in the set. Integer
  // bucket counts merge exactly, which is what lets the shard harness pool
  // per-worker cells into quantiles byte-identical for any --jobs N.
  common::LogSketch response_sketch;
  std::size_t systems = 0;
  std::size_t total_jobs = 0;
};

RunMetrics compute_run_metrics(const model::RunResult& run);

// Averages the per-system metrics. Systems that served nothing contribute
// to AIR/ASR but are excluded from the AART average (their mean response is
// undefined).
SetMetrics compute_set_metrics(const std::vector<model::RunResult>& runs);

// Response-time distribution over the served jobs of one or more runs —
// tail behaviour the paper's AART hides (used by the gateway example and
// the policy ablation).
struct ResponseDistribution {
  std::size_t samples = 0;
  double mean_tu = 0.0;
  double p50_tu = 0.0;
  double p90_tu = 0.0;
  double p99_tu = 0.0;
  double max_tu = 0.0;
};

ResponseDistribution compute_response_distribution(
    const std::vector<model::RunResult>& runs);

// Channel-induced latency of cross-core traffic in a partitioned exec run.
//
// `latency_*`: posted → delivered, over successfully delivered messages.
// This is the cost of epoch synchronization: the spec's channel_latency
// plus the wait for the next MultiVm boundary (the quantization delay that
// makes the quantum a tuning knob).
//
// `e2e_*`: posted → handler completion on the receiving core, over messages
// whose released job was served before the horizon — the cross-core
// response time a caller actually observes (channel + queueing + service).
// Scheduling-policy records (kPool / kSteal) are counted separately: their
// posted → delivered gap is not wire latency but the time the job waited in
// the shared pool / the victim's queue before the scheduler moved it, so
// they get their own wait distribution instead of polluting `latency_*`.
struct ChannelMetrics {
  std::size_t delivered = 0;
  std::size_t failed = 0;  // unroutable or serverless target
  double latency_mean_tu = 0.0;
  double latency_p50_tu = 0.0;
  double latency_p95_tu = 0.0;
  double latency_p99_tu = 0.0;
  std::size_t e2e_samples = 0;
  double e2e_p50_tu = 0.0;
  double e2e_p95_tu = 0.0;
  double e2e_p99_tu = 0.0;
  // Run-time job movement by the scheduling policy.
  std::size_t pool_dispatches = 0;
  std::size_t steals = 0;
  // Online-rebalancer moves (kRebalance records): cross-core migrations of
  // pending jobs, and online admissions of offline-rejected periodic tasks
  // (from_core == kNoCore). Migrations contribute their queue wait to the
  // sched-wait distribution exactly like steals; admissions (posted ==
  // delivered by construction) do not.
  std::size_t rebalance_migrations = 0;
  std::size_t rebalance_admissions = 0;
  double sched_wait_mean_tu = 0.0;  // over pool dispatches + steals + moves
  double sched_wait_p99_tu = 0.0;
  // Overload-policy ledger entries (kShed / kTakeover). Counts only — a
  // shed job has no delivery latency to speak of.
  std::size_t sheds = 0;
  std::size_t takeovers = 0;
};

// `merged` must be the merged RunResult of the same run the deliveries came
// from (outcome releases are matched against delivery instants by job name).
ChannelMetrics compute_channel_metrics(
    const std::vector<ChannelDelivery>& deliveries,
    const model::RunResult& merged);

}  // namespace tsf::exp
