// Offline clairvoyant value-accrual upper bound, and the value-accrual
// ratio a storm run is scored by.
//
// The bound is deliberately generous — a clairvoyant scheduler that knows
// every release in advance, serves at full processor speed on every serving
// core (no server bandwidth throttling, no overheads, no queue discipline)
// and may split jobs fractionally. Its accrued value is computed as a
// fractional knapsack: jobs that could individually meet their deadline are
// taken in decreasing value-density order against a service supply of
// ceil(horizon / server_period) * capacity per serving core. Every
// relaxation only raises the bound, so for any real run
//
//     ratio = accrued / bound <= 1,
//
// and the ratio orders policies the way D-over's competitive-factor
// analysis does (Koren & Shasha): a policy closer to 1 extracted more of
// the value the storm ever made reachable.
#pragma once

#include <cstddef>

#include "model/run_result.h"
#include "model/spec.h"

namespace tsf::analysis {

struct ValueAccrual {
  // Value actually banked by the run: sum of effective_value over served
  // jobs that met their deadline (soft jobs — no deadline — always bank).
  double accrued = 0.0;
  // The clairvoyant fractional-knapsack upper bound.
  double bound = 0.0;
  // accrued / bound; 0 when the bound is 0.
  double ratio = 0.0;
};

// `merged` must be the merged result of running `spec`; `serving_cores` the
// number of cores carrying a server replica (>= 1 for any serving run).
ValueAccrual compute_value_accrual(const model::SystemSpec& spec,
                                   const model::RunResult& merged,
                                   std::size_t serving_cores);

}  // namespace tsf::analysis
