#include "analysis/rta.h"

#include <numeric>

#include "common/diag.h"

namespace tsf::analysis {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace

Duration server_interference(const model::ServerSpec& server,
                             Duration window) {
  if (window <= Duration::zero()) return Duration::zero();
  switch (server.policy) {
    case model::ServerPolicy::kNone:
    case model::ServerPolicy::kBackground:
      // Background execution never interferes with periodic tasks.
      return Duration::zero();
    case model::ServerPolicy::kPolling:
    case model::ServerPolicy::kSporadic:
      // Plain periodic interference (PS by §2.1; SS by Sprunt et al.).
      return server.capacity *
             ceil_div(window.count(), server.period.count());
    case model::ServerPolicy::kDeferrable: {
      // Back-to-back: periodic with jitter T - C.
      const Duration jitter = server.period - server.capacity;
      return server.capacity *
             ceil_div((window + jitter).count(), server.period.count());
    }
  }
  TSF_PANIC("unknown server policy");
}

std::optional<Duration> response_time(
    const model::PeriodicTaskSpec& task,
    const std::vector<model::PeriodicTaskSpec>& tasks,
    const model::ServerSpec* server) {
  const Duration deadline = task.effective_deadline();
  Duration r = task.cost;
  for (;;) {
    Duration next = task.cost;
    for (const auto& other : tasks) {
      if (&other == &task || other.priority <= task.priority) continue;
      next += other.cost * ceil_div(r.count(), other.period.count());
    }
    if (server != nullptr && server->priority > task.priority) {
      next += server_interference(*server, r);
    }
    if (next == r) return r;
    if (next > deadline) return std::nullopt;
    r = next;
  }
}

std::vector<std::optional<Duration>> response_times(
    const std::vector<model::PeriodicTaskSpec>& tasks,
    const model::ServerSpec* server) {
  std::vector<std::optional<Duration>> out;
  out.reserve(tasks.size());
  for (const auto& t : tasks) out.push_back(response_time(t, tasks, server));
  return out;
}

bool feasible(const std::vector<model::PeriodicTaskSpec>& tasks,
              const model::ServerSpec* server) {
  for (const auto& t : tasks) {
    if (!response_time(t, tasks, server)) return false;
  }
  return true;
}

Duration hyperperiod(const std::vector<model::PeriodicTaskSpec>& tasks,
                     const model::ServerSpec* server) {
  std::int64_t l = 1;
  auto fold = [&l](std::int64_t p) {
    const std::int64_t g = std::gcd(l, p);
    const std::int64_t candidate = l / g;
    if (candidate > Duration::infinite().count() / p) {
      l = Duration::infinite().count();
    } else {
      l = candidate * p;
    }
  };
  for (const auto& t : tasks) fold(t.period.count());
  if (server != nullptr && server->period > Duration::zero()) {
    fold(server->period.count());
  }
  return common::min(Duration::ticks(l), Duration::infinite());
}

}  // namespace tsf::analysis
