#include "analysis/partitioned.h"

#include "common/diag.h"

namespace tsf::analysis {

PartitionedFeasibility analyze_cores(
    const std::vector<std::vector<model::PeriodicTaskSpec>>& tasks_per_core,
    const std::vector<const model::ServerSpec*>& servers) {
  TSF_ASSERT(tasks_per_core.size() == servers.size(),
             "one server slot per core required");
  PartitionedFeasibility out;
  out.cores.reserve(tasks_per_core.size());
  for (std::size_t c = 0; c < tasks_per_core.size(); ++c) {
    CoreFeasibility core;
    core.response_times = response_times(tasks_per_core[c], servers[c]);
    for (const auto& r : core.response_times) {
      if (!r.has_value()) core.feasible = false;
    }
    for (const auto& t : tasks_per_core[c]) {
      core.utilization += t.utilization();
    }
    if (servers[c] != nullptr) core.utilization += servers[c]->utilization();
    out.feasible = out.feasible && core.feasible;
    out.cores.push_back(std::move(core));
  }
  return out;
}

}  // namespace tsf::analysis
