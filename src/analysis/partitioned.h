// Partitioned fixed-priority feasibility.
//
// Under partitioned scheduling each core runs an independent uniprocessor
// scheduler, so system-level feasibility is the conjunction of per-core
// verdicts — each computed with the exact analysis of rta.h, including the
// server's interference bound (ceil-based for the Polling Server, the
// Strosnider/Lehoczky/Sha back-to-back bound for the Deferrable Server;
// this is the analysis-side twin of TaskServer::interference()).
#pragma once

#include <optional>
#include <vector>

#include "analysis/rta.h"
#include "model/spec.h"

namespace tsf::analysis {

struct CoreFeasibility {
  // Response time per task on this core, aligned with the input task list;
  // nullopt where the task misses its deadline.
  std::vector<std::optional<common::Duration>> response_times;
  bool feasible = true;
  // Packed utilization of the core (tasks + server replica).
  double utilization = 0.0;
};

struct PartitionedFeasibility {
  std::vector<CoreFeasibility> cores;
  // True iff every core is feasible. Says nothing about rejected items —
  // callers that partitioned a spec must also check the rejection list
  // (mp::MpFeasibility folds both into one verdict).
  bool feasible = true;
};

// Analyzes every core independently. `servers[c]` may be nullptr for a core
// without an aperiodic server; the two vectors must have equal length.
PartitionedFeasibility analyze_cores(
    const std::vector<std::vector<model::PeriodicTaskSpec>>& tasks_per_core,
    const std::vector<const model::ServerSpec*>& servers);

}  // namespace tsf::analysis
