// Classic utilisation bounds for rate-monotonic scheduling with servers.
#pragma once

#include <cstddef>

namespace tsf::analysis {

// Liu & Layland: n(2^{1/n} - 1). A periodic set of n tasks is RM-feasible
// when its utilisation is below this bound (sufficient, not necessary).
double liu_layland_bound(std::size_t n);

// Lehoczky/Sha/Strosnider: with a Deferrable Server of utilisation Us at the
// highest priority, the periodic tasks (n -> infinity) are RM-feasible while
// their utilisation stays below ln((Us + 2) / (2 Us + 1)).
double deferrable_server_periodic_bound(double server_utilization);

// A Polling Server counts as one more periodic task: LL bound for n+1.
double polling_server_periodic_bound(std::size_t n_periodic);

}  // namespace tsf::analysis
