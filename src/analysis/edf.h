// EDF feasibility: utilisation test (implicit deadlines) and the
// processor-demand criterion (constrained deadlines), matching the RTSS
// simulator's EDF policy.
#pragma once

#include <vector>

#include "model/spec.h"

namespace tsf::analysis {

// Sum of cost/period.
double utilization(const std::vector<model::PeriodicTaskSpec>& tasks);

// Exact for implicit-deadline EDF: feasible iff U <= 1.
bool edf_feasible_implicit(const std::vector<model::PeriodicTaskSpec>& tasks);

// Processor-demand criterion: for every absolute deadline d up to the
// hyperperiod, sum_i max(0, floor((d - D_i)/T_i) + 1) * C_i <= d.
// Exact for synchronous constrained-deadline sets.
bool edf_feasible_demand(const std::vector<model::PeriodicTaskSpec>& tasks);

}  // namespace tsf::analysis
