// Offline feasibility: fixed-priority response-time analysis with task
// servers.
//
// The Polling Server "can be included in the feasibility analysis like any
// periodic task" (§2.1); the Deferrable Server requires the modified
// analysis of Strosnider/Lehoczky/Sha (§2.2): its deferred execution lets it
// hit lower-priority tasks back-to-back, modelled as release jitter T - C.
#pragma once

#include <optional>
#include <vector>

#include "model/spec.h"

namespace tsf::analysis {

using common::Duration;

// Worst-case response time of `task` under preemptive fixed priorities,
// given all tasks (only strictly-higher-priority ones interfere) and an
// optional server. nullopt if the iteration exceeds the task's deadline
// (the task is infeasible).
std::optional<Duration> response_time(
    const model::PeriodicTaskSpec& task,
    const std::vector<model::PeriodicTaskSpec>& tasks,
    const model::ServerSpec* server = nullptr);

// Response times for every task; entry is nullopt where infeasible.
std::vector<std::optional<Duration>> response_times(
    const std::vector<model::PeriodicTaskSpec>& tasks,
    const model::ServerSpec* server = nullptr);

// True iff every task meets its deadline under the analysis above.
bool feasible(const std::vector<model::PeriodicTaskSpec>& tasks,
              const model::ServerSpec* server = nullptr);

// Interference of the server on a window (ceil-based; back-to-back for the
// Deferrable Server). Exposed for tests and the bench harness.
Duration server_interference(const model::ServerSpec& server, Duration window);

// Least common multiple of all task periods (and the server period when
// given); saturates at Duration::infinite() on overflow.
Duration hyperperiod(const std::vector<model::PeriodicTaskSpec>& tasks,
                     const model::ServerSpec* server = nullptr);

}  // namespace tsf::analysis
