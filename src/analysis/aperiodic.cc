#include "analysis/aperiodic.h"

#include "common/diag.h"

namespace tsf::analysis {

Duration ps_online_response_time(const PsOnlineInputs& in) {
  TSF_ASSERT(in.capacity > Duration::zero(), "capacity must be positive");
  TSF_ASSERT(in.demand >= Duration::zero(), "negative demand");
  TSF_ASSERT(in.remaining >= Duration::zero() && in.remaining <= in.capacity,
             "remaining capacity out of range");
  if (in.demand <= in.remaining) {
    // Served entirely within the current instance (eq. 1, first case).
    return (in.t + in.demand) - in.release;
  }
  const std::int64_t ts = in.period.count();
  const Duration overflow = in.demand - in.remaining;
  const std::int64_t fk = overflow.count() / in.capacity.count();   // eq. (2)
  const std::int64_t gk = (in.t.ticks() + ts - 1) / ts;             // eq. (3)
  const Duration rk = overflow - in.capacity * fk;                  // eq. (4)
  // eq. (1), second case: (F_k + G_k) Ts + R_k - r_a.
  return Duration::ticks((fk + gk) * ts) + rk - (in.release -
                                                 common::TimePoint::origin());
}

Duration implementation_response_time(std::int64_t instance_index,
                                      Duration server_period,
                                      Duration cumulative_before,
                                      Duration own_cost, TimePoint release) {
  const common::TimePoint served_from =
      common::TimePoint::origin() + server_period * instance_index;
  return (served_from + cumulative_before + own_cost) - release;
}

}  // namespace tsf::analysis
