#include "analysis/offline_value.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"

namespace tsf::analysis {

using common::Duration;
using common::TimePoint;

ValueAccrual compute_value_accrual(const model::SystemSpec& spec,
                                   const model::RunResult& merged,
                                   std::size_t serving_cores) {
  ValueAccrual out;

  // What the run banked: a served job's value counts iff it completed by
  // its (release-relative) deadline; soft jobs always bank. Values come
  // from the spec (outcomes don't carry them), matched by name.
  std::map<std::string, const model::AperiodicJobSpec*> by_name;
  for (const auto& job : spec.aperiodic_jobs) by_name[job.name] = &job;
  for (const auto& outcome : merged.jobs) {
    if (!outcome.served) continue;
    const auto it = by_name.find(outcome.name);
    if (it == by_name.end()) continue;
    const model::AperiodicJobSpec& job = *it->second;
    if (!job.relative_deadline.is_zero() &&
        outcome.completion > outcome.release + job.relative_deadline) {
      continue;
    }
    out.accrued += job.effective_value();
  }

  // The clairvoyant bound. Supply: full-speed service on every serving
  // core for ceil(horizon / period) whole server periods' worth of
  // capacity — an overestimate of anything a bandwidth-limited server can
  // deliver, which is what keeps ratio <= 1.
  const Duration horizon = spec.horizon - TimePoint::origin();
  double supply_tu = 0.0;
  if (!spec.server.period.is_zero()) {
    const double periods =
        std::ceil(horizon.to_tu() / spec.server.period.to_tu());
    supply_tu = static_cast<double>(serving_cores) * periods *
                spec.server.capacity.to_tu();
  }

  // Individually feasible jobs (a clairvoyant machine still can't finish a
  // job whose own cost overruns its deadline or the horizon), in
  // decreasing value-density order, taken fractionally.
  struct Item {
    double value;
    double cost_tu;
  };
  std::vector<Item> items;
  items.reserve(spec.aperiodic_jobs.size());
  for (const auto& job : spec.aperiodic_jobs) {
    const Duration cost = job.cost;
    if (!job.relative_deadline.is_zero() && cost > job.relative_deadline) {
      continue;
    }
    if (job.release + cost > spec.horizon) continue;
    items.push_back({job.effective_value(), cost.to_tu()});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.value * b.cost_tu > b.value * a.cost_tu;  // density desc
  });
  double remaining = supply_tu;
  for (const auto& item : items) {
    if (remaining <= 0.0) break;
    const double fraction =
        item.cost_tu <= remaining ? 1.0 : remaining / item.cost_tu;
    out.bound += item.value * fraction;
    remaining -= item.cost_tu * fraction;
  }

  out.ratio = out.bound > 0.0 ? out.accrued / out.bound : 0.0;
  return out;
}

}  // namespace tsf::analysis
