#include "analysis/global.h"

#include "analysis/rta.h"
#include "common/diag.h"

namespace tsf::analysis {

using common::Duration;

Duration global_workload_bound(const model::PeriodicTaskSpec& task,
                               Duration window) {
  if (window <= Duration::zero()) return Duration::zero();
  // Densest packing of task jobs into the window: the first job finishes
  // as late as possible (its deadline), the rest arrive back-to-back.
  const Duration deadline = task.effective_deadline();
  const std::int64_t slack = (window + deadline - task.cost).count();
  const std::int64_t jobs = slack / task.period.count();
  const Duration tail = Duration::ticks(
      slack - jobs * task.period.count());
  return task.cost * jobs + common::min(task.cost, tail);
}

GlobalFeasibility analyze_global(
    const std::vector<model::PeriodicTaskSpec>& tasks, std::size_t cores,
    const model::ServerSpec* server) {
  TSF_ASSERT(cores > 0, "global analysis needs at least one core");
  GlobalFeasibility out;
  out.response_times.reserve(tasks.size());
  const auto m = static_cast<std::int64_t>(cores);

  for (const auto& task : tasks) {
    const Duration deadline = task.effective_deadline();
    Duration r = task.cost;
    std::optional<Duration> result;
    for (;;) {
      Duration interference = Duration::zero();
      for (const auto& other : tasks) {
        if (&other == &task || other.priority <= task.priority) continue;
        interference += global_workload_bound(other, r);
      }
      if (server != nullptr &&
          server->policy != model::ServerPolicy::kNone &&
          server->policy != model::ServerPolicy::kBackground &&
          server->priority > task.priority) {
        // m pinned replicas; server_interference is one replica's bound.
        interference += server_interference(*server, r) * m;
      }
      const Duration next =
          task.cost + Duration::ticks(interference.count() / m);
      if (next == r) {
        result = r;
        break;
      }
      if (next > deadline) break;
      r = next;
    }
    out.response_times.push_back(result);
    out.feasible = out.feasible && result.has_value();
  }
  return out;
}

}  // namespace tsf::analysis
