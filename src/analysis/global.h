// Global fixed-priority feasibility on m cores — the analysis-side
// companion of the mp runtime's `global` scheduling policy.
//
// Bertogna-Cirinei style response-time analysis: task k's response is the
// fixpoint of
//
//     R_k = C_k + floor( sum_{i in hp(k)} W_i(R_k) / m )
//
// where W_i(L) bounds task i's interfering workload in any window of length
// L (jobs counted via the carry-in-free bound N_i(L) = floor((L + D_i -
// C_i) / T_i), the last one clipped to the window's tail). It is sufficient,
// not exact — global schedulability has no tractable exact test — and is
// reported beside the partitioned verdict so a spec's feasibility can be
// compared across the two scheduling views.
//
// The aperiodic server is folded in as m additional interfering "tasks"
// (one replica per core, capacity/period each, at the server's priority):
// in the implemented runtime the replicas stay pinned, so from a globally
// scheduled task's perspective every core loses one replica's worth of
// service — summing m replicas and dividing by m charges exactly that.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "model/spec.h"

namespace tsf::analysis {

struct GlobalFeasibility {
  // Response-time bound per task, aligned with the input task list;
  // nullopt where the bound exceeds the task's deadline.
  std::vector<std::optional<common::Duration>> response_times;
  bool feasible = true;
};

// Analyzes `tasks` under global fixed-priority scheduling on `cores`
// processors. `server` may be nullptr (no aperiodic service).
GlobalFeasibility analyze_global(
    const std::vector<model::PeriodicTaskSpec>& tasks, std::size_t cores,
    const model::ServerSpec* server = nullptr);

// The workload bound W_i(L) above, exposed for tests: the most task `i`
// can execute inside any window of length `window`.
common::Duration global_workload_bound(const model::PeriodicTaskSpec& task,
                                       common::Duration window);

}  // namespace tsf::analysis
