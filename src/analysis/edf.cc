#include "analysis/edf.h"

#include <algorithm>

#include "analysis/rta.h"
#include "common/diag.h"

namespace tsf::analysis {

using common::Duration;

double utilization(const std::vector<model::PeriodicTaskSpec>& tasks) {
  double u = 0.0;
  for (const auto& t : tasks) u += t.cost.to_tu() / t.period.to_tu();
  return u;
}

bool edf_feasible_implicit(const std::vector<model::PeriodicTaskSpec>& tasks) {
  return utilization(tasks) <= 1.0 + 1e-12;
}

bool edf_feasible_demand(const std::vector<model::PeriodicTaskSpec>& tasks) {
  if (tasks.empty()) return true;
  if (utilization(tasks) > 1.0 + 1e-12) return false;
  const Duration limit = hyperperiod(tasks);
  TSF_ASSERT(!limit.is_infinite(), "hyperperiod overflow in demand test");

  // Check points: every absolute deadline in (0, hyperperiod].
  std::vector<std::int64_t> points;
  for (const auto& t : tasks) {
    const std::int64_t d = t.effective_deadline().count();
    for (std::int64_t at = d; at <= limit.count(); at += t.period.count()) {
      points.push_back(at);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  for (const std::int64_t d : points) {
    std::int64_t demand = 0;
    for (const auto& t : tasks) {
      const std::int64_t di = t.effective_deadline().count();
      if (d < di) continue;
      demand += ((d - di) / t.period.count() + 1) * t.cost.count();
    }
    if (demand > d) return false;
  }
  return true;
}

}  // namespace tsf::analysis
