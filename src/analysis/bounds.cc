#include "analysis/bounds.h"

#include <cmath>

#include "common/diag.h"

namespace tsf::analysis {

double liu_layland_bound(std::size_t n) {
  TSF_ASSERT(n > 0, "bound needs at least one task");
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

double deferrable_server_periodic_bound(double server_utilization) {
  TSF_ASSERT(server_utilization >= 0.0 && server_utilization <= 1.0,
             "server utilisation must be in [0,1]");
  return std::log((server_utilization + 2.0) /
                  (2.0 * server_utilization + 1.0));
}

double polling_server_periodic_bound(std::size_t n_periodic) {
  return liu_layland_bound(n_periodic + 1);
}

}  // namespace tsf::analysis
