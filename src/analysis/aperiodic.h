// On-line aperiodic response-time equations — paper §7.
//
// Equation (1)-(4): the textbook Polling Server (resumable service, FIFO by
// deadline, server at the highest priority). At time t, for a task J_a
// released at r_a, with Cape(t, d_a) the total pending demand with deadline
// at or before d_a (including J_a itself), cs(t) the remaining capacity of
// the current instance, Cs/Ts the server parameters:
//
//   R_a = t + Cape - r_a                       if Cape <= cs(t)
//   R_a = (F_k + G_k) Ts + R_k - r_a           otherwise, with
//         F_k = floor((Cape - cs) / Cs)            full instances needed
//         G_k = ceil(t / Ts)                       index of the next instance
//         R_k = Cape - cs - F_k * Cs               service in the last one
//
// Equation (5): the *implemented* (non-resumable) server with the
// list-of-lists queue: R_a = (I_a * Ts + Cp_a + C_a) - r_a.
#pragma once

#include "common/time.h"

namespace tsf::analysis {

using common::Duration;
using common::TimePoint;

struct PsOnlineInputs {
  TimePoint t;           // current time (= analysis instant)
  TimePoint release;     // r_a
  Duration demand;       // Cape(t, d_a), including the task's own cost
  Duration remaining;    // cs(t), remaining capacity of the current instance
  Duration capacity;     // Cs
  Duration period;       // Ts
};

// Equations (1)-(4).
Duration ps_online_response_time(const PsOnlineInputs& in);

// Equation (5).
Duration implementation_response_time(std::int64_t instance_index,
                                      Duration server_period,
                                      Duration cumulative_before,
                                      Duration own_cost, TimePoint release);

}  // namespace tsf::analysis
