#include "mp/rebalance.h"

#include <algorithm>
#include <utility>

#include "common/diag.h"
#include "mp/channel.h"

namespace tsf::mp {

using common::Duration;
using common::TimePoint;

const char* to_string(RebalanceMode mode) {
  switch (mode) {
    case RebalanceMode::kOff:
      return "off";
    case RebalanceMode::kDrift:
      return "drift";
    case RebalanceMode::kAdmit:
      return "admit";
  }
  return "?";
}

std::optional<RebalanceMode> parse_rebalance_mode(const std::string& text) {
  if (text == "off") return RebalanceMode::kOff;
  if (text == "drift") return RebalanceMode::kDrift;
  if (text == "admit") return RebalanceMode::kAdmit;
  return std::nullopt;
}

Rebalancer::Rebalancer(RebalanceConfig config, ChannelFabric& fabric,
                       const model::SystemSpec& spec,
                       const Partition& partition, PackingStrategy strategy)
    : config_(std::move(config)),
      fabric_(fabric),
      spec_(spec),
      packer_(strategy),
      rejected_(partition.rejected) {
  TSF_ASSERT(config_.mode != RebalanceMode::kOff,
             "a Rebalancer in mode 'off' should not be constructed");
  TSF_ASSERT(config_.drift > 0.0, "rebalance_drift must be positive");
  TSF_ASSERT(config_.period > Duration::zero(),
             "rebalance_period must be positive");
  TSF_ASSERT(partition.cores.size() == fabric_.cores(),
             "partition and fabric disagree on the core count");
  periodic_util_.reserve(partition.cores.size());
  packed_util_.reserve(partition.cores.size());
  for (const auto& core : partition.cores) {
    double u = 0.0;
    for (std::size_t i : core.tasks) u += spec_.periodic_tasks[i].utilization();
    periodic_util_.push_back(u);
    packed_util_.push_back(core.utilization);
    serves_.push_back(core.has_server);
  }
  measured_ = periodic_util_;
  window_.resize(partition.cores.size());
  migrated_in_.assign(partition.cores.size(), Duration::zero());
  for (const auto& job : spec_.aperiodic_jobs) {
    declared_[job.name] = job.effective_declared_cost();
  }
}

void Rebalancer::sample_loads(TimePoint boundary) {
  // Work moved *into* a core re-releases there (deliver_job), so its raw
  // released_cost would count it as freshly offered load — and a pass
  // would manufacture drift at the move's own target, bouncing the same
  // backlog right back. The fabric ledger names every such re-release —
  // this rebalancer's kRebalance migrations *and* the semi policy's
  // kSteal moves — so the compensation covers both. kPool / kMigrate /
  // kFire deliveries are a job's first release anywhere and stay counted;
  // so do kRebalance admissions (from_core == kNoCore, a periodic task).
  const auto& ledger = fabric_.deliveries();
  for (; ledger_seen_ < ledger.size(); ++ledger_seen_) {
    const auto& d = ledger[ledger_seen_];
    if (!d.ok) continue;
    if (d.kind != exp::ChannelDelivery::Kind::kSteal &&
        d.kind != exp::ChannelDelivery::Kind::kRebalance) {
      continue;
    }
    if (d.from_core == exp::ChannelDelivery::kNoCore ||
        d.to_core == exp::ChannelDelivery::kNoCore) {
      continue;
    }
    const auto it = declared_.find(d.job);
    if (it != declared_.end()) migrated_in_[d.to_core] += it->second;
  }

  for (std::size_t c = 0; c < fabric_.cores(); ++c) {
    const exp::CoreEndpoint* endpoint = fabric_.endpoint(c);
    const Duration released =
        endpoint != nullptr ? endpoint->released_cost() - migrated_in_[c]
                            : Duration::zero();
    auto& window = window_[c];
    window.push_back({boundary, released});
    // Keep the newest sample that is at least one period old as the window
    // base, so the measured rate spans the full period once warmed up.
    while (window.size() >= 2 && window[1].at + config_.period <= boundary) {
      window.pop_front();
    }
    const Sample& base = window.front();
    const Duration span = boundary - base.at;
    const double aperiodic_rate =
        span > Duration::zero()
            ? (released - base.released_cost).to_tu() / span.to_tu()
            : 0.0;
    measured_[c] = periodic_util_[c] + aperiodic_rate;
  }
}

bool Rebalancer::migrate_pass(TimePoint boundary) {
  double max_drift = 0.0;
  for (std::size_t c = 0; c < fabric_.cores(); ++c) {
    max_drift = std::max(max_drift, measured_[c] - packed_util_[c]);
  }
  if (max_drift <= config_.drift) return false;

  // Snapshot (read-only) the movable backlog of every drifted core: the
  // stealable pending requests minus one — the highest-priority request
  // stays local, the same keep-local-work rule the semi stealer's victims
  // follow. Boundary-coincident (mid-bind) releases are outside the
  // snapshot by construction.
  struct Movable {
    exp::StolenJob stolen;
    std::size_t from;
  };
  std::vector<Movable> movable;
  for (std::size_t c = 0; c < fabric_.cores(); ++c) {
    if (measured_[c] - packed_util_[c] <= config_.drift) continue;
    exp::CoreEndpoint* victim = fabric_.endpoint(c);
    if (victim == nullptr) continue;
    auto snapshot = victim->stealable_snapshot();
    if (snapshot.empty()) continue;
    if (snapshot.size() >= victim->queue_depth()) {
      std::size_t keep = 0;
      for (std::size_t i = 1; i < snapshot.size(); ++i) {
        const auto& a = snapshot[i];
        const auto& b = snapshot[keep];
        if (exp::schedules_before(a.job.effective_value(), a.release,
                                  a.job.name, b.job.effective_value(),
                                  b.release, b.job.name)) {
          keep = i;
        }
      }
      snapshot.erase(snapshot.begin() +
                     static_cast<std::ptrdiff_t>(keep));
    }
    for (auto& s : snapshot) movable.push_back({std::move(s), c});
  }
  if (movable.empty()) return true;  // triggered; nothing was movable

  // Re-run the offline packer on live state: bins carry the *measured*
  // utilization, a pending request weighs its declared cost per server
  // period (the unit server replicas are sized in), and cores without a
  // server replica are excluded via an over-capacity load.
  std::vector<double> bins;
  bins.reserve(fabric_.cores());
  for (std::size_t c = 0; c < fabric_.cores(); ++c) {
    const bool serving = serves_[c] && fabric_.endpoint(c) != nullptr;
    bins.push_back(serving ? measured_[c] : 2.0);
  }
  const double service_period =
      spec_.server.period.is_zero() ? 1.0 : spec_.server.period.to_tu();
  std::vector<PartitionItem> items;
  items.reserve(movable.size());
  for (const auto& m : movable) {
    PartitionItem item;
    item.kind = PartitionItem::Kind::kTask;
    item.name = m.stolen.job.name;
    item.utilization = m.stolen.job.declared_cost.to_tu() / service_period;
    items.push_back(std::move(item));
  }
  const std::vector<int> placement = packer_.pack_items(items, bins);

  // Only the requests the packer sent to a *different* core are removed
  // from their queues; everything else was never touched — no phantom
  // re-release, no queue-order churn for work that stays.
  for (std::size_t i = 0; i < movable.size(); ++i) {
    if (placement[i] < 0) continue;  // fits nowhere better: stays put
    const auto target = static_cast<std::size_t>(placement[i]);
    const std::size_t from = movable[i].from;
    if (target == from) continue;  // re-packed home: stays put
    auto stolen = fabric_.endpoint(from)->steal_exact(
        movable[i].stolen.job.name, movable[i].stolen.release);
    if (!stolen.has_value()) continue;  // raced away (defensive; VMs paused)
    fabric_.endpoint(target)->deliver_job(stolen->job, stolen->release);
    // migrated_in_ is updated from the ledger record below at the next
    // sample — exactly when the re-release shows up in released_cost.
    exp::ChannelDelivery d;
    d.kind = exp::ChannelDelivery::Kind::kRebalance;
    d.job = stolen->job.name;
    d.from_core = from;
    d.to_core = target;
    d.posted = stolen->release;
    d.delivered = boundary;
    d.ok = true;
    fabric_.record(std::move(d));
    ++migrations_;
  }
  return true;
}

bool Rebalancer::admit_pass(TimePoint boundary) {
  // Retry every rejected task in ONE pack_items call, so online admission
  // follows the same decreasing-utilization discipline as the offline
  // packer (admitting spec-order-first could let a small task squat on the
  // headroom a larger one needed). Server replicas cannot be admitted
  // online — a core that was split without a server has no service
  // machinery to grow one into mid-run — and stay rejected.
  std::vector<std::size_t> retried;  // indices into rejected_
  std::vector<PartitionItem> items;
  for (std::size_t i = 0; i < rejected_.size(); ++i) {
    if (rejected_[i].item.kind != PartitionItem::Kind::kTask) continue;
    retried.push_back(i);
    items.push_back(rejected_[i].item);
  }
  if (items.empty()) return false;

  // Admission bins are the *measured* utilizations — this is deliberate
  // bandwidth reclamation: an offline-rejected task is admitted into
  // server reservation the workload is measurably not using. It is an
  // optimistic, irreversible bet, so each bin keeps a `drift`-sized
  // safety margin below full: if the aperiodic stream later resumes, the
  // core has that much room before the drift trigger starts migrating its
  // backlog away (the reversible side self-corrects; the admitted task
  // stays and is visible in the admission ledger and report).
  std::vector<double> bins;
  bins.reserve(measured_.size());
  for (const double u : measured_) bins.push_back(u + config_.drift);
  const std::vector<int> placement = packer_.pack_items(items, bins);

  bool any = false;
  std::vector<bool> admitted(rejected_.size(), false);
  for (std::size_t k = 0; k < items.size(); ++k) {
    if (placement[k] < 0) continue;
    const auto target = static_cast<std::size_t>(placement[k]);
    const Rejection& rejection = rejected_[retried[k]];
    model::PeriodicTaskSpec task = spec_.periodic_tasks[rejection.item.index];
    task.affinity = placement[k];
    task.start = boundary;  // releases begin at the admission instant
    if (!fabric_.endpoint(target)->admit_task(task)) continue;
    // The admitted task is part of the mapping now: both the measured and
    // the packed picture carry it, so it creates no phantom drift.
    periodic_util_[target] += rejection.item.utilization;
    packed_util_[target] += rejection.item.utilization;
    measured_[target] += rejection.item.utilization;
    exp::ChannelDelivery d;
    d.kind = exp::ChannelDelivery::Kind::kRebalance;
    d.job = task.name;
    d.to_core = target;
    d.posted = boundary;
    d.delivered = boundary;
    d.ok = true;
    fabric_.record(std::move(d));
    ++admissions_;
    admitted[retried[k]] = true;
    any = true;
  }
  if (any) {
    std::vector<Rejection> remaining;
    for (std::size_t i = 0; i < rejected_.size(); ++i) {
      if (!admitted[i]) remaining.push_back(rejected_[i]);
    }
    rejected_ = std::move(remaining);
  }
  return any;
}

void Rebalancer::on_epoch(TimePoint boundary) {
  sample_loads(boundary);
  if (boundary - last_pass_ < config_.period) return;
  bool ran = migrate_pass(boundary);
  if (config_.mode == RebalanceMode::kAdmit && !rejected_.empty()) {
    ran = admit_pass(boundary) || ran;
  }
  if (ran) {
    ++passes_;
    last_pass_ = boundary;
  }
}

}  // namespace tsf::mp
