#include "mp/mp_system.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "common/diag.h"
#include "common/rng.h"
#include "mp/channel.h"
#include "mp/multi_vm.h"
#include "mp/overload.h"
#include "mp/threaded_runtime.h"
#include "sim/simulator.h"

namespace tsf::mp {

using common::TimePoint;

const char* to_string(ExecBackend backend) {
  switch (backend) {
    case ExecBackend::kLockstep:
      return "lockstep";
    case ExecBackend::kThreads:
      return "threads";
  }
  return "?";
}

std::optional<ExecBackend> parse_exec_backend(std::string_view name) {
  if (name == "lockstep") return ExecBackend::kLockstep;
  if (name == "threads") return ExecBackend::kThreads;
  return std::nullopt;
}

const char* to_string(RunEngine engine) {
  switch (engine) {
    case RunEngine::kSim:
      return "sim";
    case RunEngine::kExec:
      return "exec";
  }
  return "?";
}

std::optional<RunEngine> parse_run_engine(std::string_view name) {
  if (name == "sim") return RunEngine::kSim;
  if (name == "exec") return RunEngine::kExec;
  return std::nullopt;
}

// Whether a job is handed to the global shared ready pool instead of any
// core's static assignment: unpinned and released by time (a triggered job
// has no release of its own — it stays with its routed core so the fire
// has a resident event to hit).
static bool pool_scheduled(const model::AperiodicJobSpec& job) {
  return job.affinity < 0 && !job.triggered;
}

std::vector<model::SystemSpec> split_spec(const model::SystemSpec& spec,
                                          const Partition& partition,
                                          SchedPolicy policy) {
  std::vector<model::SystemSpec> out;
  out.reserve(partition.cores.size());
  for (std::size_t c = 0; c < partition.cores.size(); ++c) {
    const CoreAssignment& core = partition.cores[c];
    model::SystemSpec sub;
    sub.name = spec.name + "/c" + std::to_string(c);
    sub.cores = 1;
    sub.horizon = spec.horizon;
    sub.server = spec.server;
    if (!core.has_server) sub.server.policy = model::ServerPolicy::kNone;
    sub.periodic_tasks.reserve(core.tasks.size());
    for (std::size_t i : core.tasks) {
      model::PeriodicTaskSpec t = spec.periodic_tasks[i];
      t.affinity = static_cast<int>(c);
      sub.periodic_tasks.push_back(std::move(t));
    }
    sub.aperiodic_jobs.reserve(core.jobs.size());
    for (std::size_t j : core.jobs) {
      if (spec.aperiodic_jobs[j].migrate) continue;  // fabric-released
      if (policy == SchedPolicy::kGlobal &&
          pool_scheduled(spec.aperiodic_jobs[j])) {
        continue;  // lives in the shared ready pool, not on a core
      }
      // Affinity is preserved, not overwritten: -1 marks the job stealable
      // by the semi-partitioned policy.
      sub.aperiodic_jobs.push_back(spec.aperiodic_jobs[j]);
    }
    sub.channel_latency = spec.channel_latency;
    out.push_back(std::move(sub));
  }
  return out;
}

// How final an outcome is, for the (job, release) dedupe: a served record
// beats an interrupted or shed one beats an unserved placeholder. A shed
// outcome is final — the overload policy decided the job's fate, and the
// record must not be dropped as a shadow of some other core's pending copy.
static int outcome_rank(const model::JobOutcome& o) {
  if (o.served) return 2;
  if (o.interrupted || o.shed) return 1;
  return 0;
}

model::RunResult merge_results(const model::SystemSpec& spec,
                               const Partition& partition,
                               const std::vector<model::RunResult>& per_core) {
  TSF_ASSERT(per_core.size() == partition.cores.size(),
             "one result per core required");
  model::RunResult merged;

  // Dedupe by (job, release): with run-time job movement (work stealing,
  // pool dispatch) a job can complete on a non-home core while its home
  // core still reports the same release as unserved — per-core outcomes
  // are no longer disjoint. The dedupe is strictly *cross-core*: within
  // one core every record is real (a re-fired triggered job can carry two
  // releases at the same instant, one served and one still pending), so
  // nothing a single core reports is ever collapsed. Across cores, an
  // unserved record is a shadow — of a completed record on another core
  // (the job was stolen and ran there) or of another core's unserved
  // record (it was stolen and is still pending there) — and is dropped.
  using Key = std::pair<std::string, common::TimePoint>;
  std::map<Key, std::set<std::size_t>> completed_cores;
  for (std::size_t c = 0; c < per_core.size(); ++c) {
    for (const auto& outcome : per_core[c].jobs) {
      if (outcome_rank(outcome) > 0) {
        completed_cores[{outcome.name, outcome.release}].insert(c);
      }
    }
  }
  std::vector<const model::JobOutcome*> deduped;  // core, then record order
  std::map<Key, std::size_t> unserved_kept_on;    // key -> first keeping core
  for (std::size_t c = 0; c < per_core.size(); ++c) {
    for (const auto& outcome : per_core[c].jobs) {
      const Key key{outcome.name, outcome.release};
      if (outcome_rank(outcome) > 0) {
        deduped.push_back(&outcome);
        continue;
      }
      const auto done = completed_cores.find(key);
      if (done != completed_cores.end() &&
          (done->second.size() > 1 || *done->second.begin() != c)) {
        continue;  // shadow of a completion on another core
      }
      const auto kept = unserved_kept_on.find(key);
      if (kept != unserved_kept_on.end() && kept->second != c) {
        continue;  // shadow of another core's unserved record
      }
      unserved_kept_on.emplace(key, c);
      deduped.push_back(&outcome);
    }
  }

  // Aperiodic outcomes, restored to the original spec order. One name can
  // carry several outcomes (a triggered job fired repeatedly): the first
  // release fills the spec-ordered slot, the rest are appended after it in
  // name order — deterministic, and the released/served counts stay honest.
  std::map<std::string, std::vector<const model::JobOutcome*>> by_name;
  for (const auto* outcome : deduped) {
    by_name[outcome->name].push_back(outcome);
  }
  merged.jobs.reserve(spec.aperiodic_jobs.size());
  for (const auto& job : spec.aperiodic_jobs) {
    auto it = by_name.find(job.name);
    if (it != by_name.end() && !it->second.empty()) {
      merged.jobs.push_back(*it->second.front());
      it->second.erase(it->second.begin());
    } else {
      // Never ran anywhere: a migratable job with no serving core, or a
      // triggered job nobody fired (or a core that was never built).
      model::JobOutcome o;
      o.name = job.name;
      o.release = job.release;
      o.cost = job.cost;
      merged.jobs.push_back(o);
    }
  }
  for (const auto& [name, extras] : by_name) {
    for (const auto* outcome : extras) merged.jobs.push_back(*outcome);
  }

  // Periodic outcomes: stable order — by release, then core, then record
  // order (std::stable_sort over the concatenation in core order).
  for (const auto& result : per_core) {
    merged.periodic_jobs.insert(merged.periodic_jobs.end(),
                                result.periodic_jobs.begin(),
                                result.periodic_jobs.end());
  }
  std::stable_sort(merged.periodic_jobs.begin(), merged.periodic_jobs.end(),
                   [](const model::PeriodicOutcome& a,
                      const model::PeriodicOutcome& b) {
                     return a.release < b.release;
                   });

  // Timelines: namespace entities per core, then stably merge by instant so
  // simultaneous records keep core order — fully deterministic.
  std::vector<common::TraceRecord> records;
  for (std::size_t c = 0; c < per_core.size(); ++c) {
    const std::string prefix = "c" + std::to_string(c) + "/";
    for (const auto& r : per_core[c].timeline.records()) {
      records.push_back(r);
      records.back().who = prefix + r.who;
    }
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const common::TraceRecord& a,
                      const common::TraceRecord& b) { return a.at < b.at; });
  for (auto& r : records) {
    merged.timeline.record(r.at, r.kind, std::move(r.who), r.value,
                           std::move(r.note));
  }

  // The shed/takeover ledger: concatenated in core order (each core's
  // events are already in decision order), with the deciding core stamped.
  for (std::size_t c = 0; c < per_core.size(); ++c) {
    for (model::ShedEvent event : per_core[c].shed_events) {
      event.core = c;
      merged.shed_events.push_back(std::move(event));
    }
  }

  for (const auto& result : per_core) {
    merged.server_activations += result.server_activations;
    merged.server_dispatches += result.server_dispatches;
  }
  return merged;
}

MpFeasibility analyze(const model::SystemSpec& spec,
                      PackingStrategy strategy) {
  MpFeasibility out;
  out.partition = Partitioner(strategy).partition(spec);

  std::vector<std::vector<model::PeriodicTaskSpec>> tasks_per_core;
  std::vector<const model::ServerSpec*> servers;
  tasks_per_core.reserve(out.partition.cores.size());
  servers.reserve(out.partition.cores.size());
  for (const auto& core : out.partition.cores) {
    std::vector<model::PeriodicTaskSpec> tasks;
    tasks.reserve(core.tasks.size());
    for (std::size_t i : core.tasks) tasks.push_back(spec.periodic_tasks[i]);
    tasks_per_core.push_back(std::move(tasks));
    servers.push_back(core.has_server ? &spec.server : nullptr);
  }
  out.per_core = analysis::analyze_cores(tasks_per_core, servers);
  out.feasible = out.per_core.feasible && out.partition.complete();
  return out;
}

namespace {

MpRunResult run_sim(const model::SystemSpec& spec, Partition partition) {
  MpRunResult out;
  out.partition = std::move(partition);
  const auto subs = split_spec(spec, out.partition);
  out.per_core.reserve(subs.size());
  for (const auto& sub : subs) out.per_core.push_back(sim::simulate(sub));
  out.merged = merge_results(spec, out.partition, out.per_core);
  return out;
}

MpRunResult run_exec(const model::SystemSpec& spec, Partition partition,
                     const MpRunOptions& options) {
  TSF_ASSERT(!spec.horizon.is_never(), "exec needs a finite horizon");
  MpRunResult out;
  out.partition = std::move(partition);
  const auto subs = split_spec(spec, out.partition, options.policy);

  ChannelConfig channel;
  channel.latency = spec.channel_latency;
  ChannelFabric fabric(subs.size(), channel);
  SchedPolicyEngine engine(options.policy, fabric);
  const bool global = options.policy == SchedPolicy::kGlobal;

  // Jobs that bypass the static split — migratables under every policy,
  // plus every unpinned untriggered job under global (they belong to the
  // shared ready pool). Execution-time jitter is applied here, once, from
  // the same seed the per-core systems use — deterministic in spec order.
  common::Rng jitter_rng(options.exec.jitter_seed);
  for (const auto& job : spec.aperiodic_jobs) {
    const bool pooled = global && pool_scheduled(job);
    if (!job.migrate && !pooled) continue;
    exp::MigratedJob m;
    m.name = job.name;
    m.declared_cost = job.effective_declared_cost();
    m.actual_cost = exp::jittered_cost(jitter_rng, options.exec, job.cost);
    m.fires = job.fires;
    m.value = job.value;
    m.relative_deadline = job.relative_deadline;
    if (pooled) {
      // The pool is a shared structure, not a channel: no channel_latency,
      // only the wait for the first epoch boundary >= release.
      engine.add_pool_job(std::move(m), job.release);
    } else {
      fabric.add_migratable(std::move(m), job.release);
    }
  }

  std::unique_ptr<Rebalancer> rebalancer;
  if (options.rebalance.mode != RebalanceMode::kOff) {
    rebalancer = std::make_unique<Rebalancer>(options.rebalance, fabric, spec,
                                              out.partition, options.strategy);
  }
  // Mode kDover needs no governor — the per-core D-over queues shed and
  // take over locally; their decisions surface through the same per-core
  // shed_events ledger the fold below collects.
  std::unique_ptr<OverloadGovernor> governor;
  if (options.exec.overload.mode == exp::OverloadMode::kShed) {
    governor = std::make_unique<OverloadGovernor>(options.exec.overload,
                                                  fabric, spec, out.partition);
  }

  SchedPolicyEngine* engine_ptr =
      options.policy == SchedPolicy::kPartitioned ? nullptr : &engine;
  double threads_wall_seconds = 0.0;
  if (options.backend == ExecBackend::kThreads) {
    ThreadedRuntime machine(subs, options.exec, &fabric, engine_ptr,
                            rebalancer.get(), governor.get());
    for (std::size_t c = 0;
         c < options.core_trace_sinks.size() && c < subs.size(); ++c) {
      if (options.core_trace_sinks[c] != nullptr) {
        machine.attach_trace_sink(c, options.core_trace_sinks[c]);
      }
    }
    machine.set_metrics(options.metrics);
    machine.run(spec.horizon, options.quantum);
    threads_wall_seconds = machine.wall_seconds();
    out.per_core = machine.collect();
  } else {
    MultiVm machine(subs, options.exec, &fabric, engine_ptr,
                    rebalancer.get(), governor.get());
    for (std::size_t c = 0;
         c < options.core_trace_sinks.size() && c < subs.size(); ++c) {
      if (options.core_trace_sinks[c] != nullptr) {
        machine.attach_trace_sink(c, options.core_trace_sinks[c]);
      }
    }
    machine.set_metrics(options.metrics);
    machine.start();
    machine.run_until(spec.horizon, options.quantum);
    out.per_core = machine.collect();
  }
  out.merged = merge_results(spec, out.partition, out.per_core);
  out.channel_deliveries = fabric.deliveries();
  out.channel_in_flight = fabric.in_flight() + engine.pool_pending();
  out.pool_dispatches = engine.pool_dispatches();
  out.steals = engine.steal_count();
  if (rebalancer != nullptr) {
    out.rebalance_passes = rebalancer->passes();
    out.rebalance_migrations = rebalancer->migrations();
    out.rebalance_admissions = rebalancer->admissions();
    out.rebalance_still_rejected = rebalancer->still_rejected();
    out.rebalance_utilization = rebalancer->measured_utilization();
  }
  if (governor != nullptr) {
    out.overload_passes = governor->passes();
    out.overload_utilization = governor->measured_utilization();
  }
  // Fold the per-core shed/takeover ledger into the delivery ledger — one
  // kShed / kTakeover record per event, deciding core on both ends — so the
  // channel metrics and the invariant checker read a single source.
  for (const auto& event : out.merged.shed_events) {
    exp::ChannelDelivery d;
    d.kind = event.kind == model::ShedEvent::Kind::kTakeover
                 ? exp::ChannelDelivery::Kind::kTakeover
                 : exp::ChannelDelivery::Kind::kShed;
    d.job = event.job;
    d.from_core = event.core;
    d.to_core = event.core;
    d.posted = event.release;
    d.delivered = event.at;
    d.ok = true;
    out.channel_deliveries.push_back(std::move(d));
    if (event.kind == model::ShedEvent::Kind::kTakeover) {
      ++out.takeovers;
    } else {
      ++out.sheds;
    }
  }
  if (options.metrics != nullptr) {
    common::MetricsRegistry& m = *options.metrics;
    m.add_counter("mp.channel.in_flight_at_horizon", out.channel_in_flight);
    m.add_counter("mp.policy.pool_dispatches", out.pool_dispatches);
    m.add_counter("mp.policy.steals", out.steals);
    m.add_counter("mp.rebalance.passes", out.rebalance_passes);
    m.add_counter("mp.rebalance.migrations", out.rebalance_migrations);
    m.add_counter("mp.rebalance.admissions", out.rebalance_admissions);
    m.add_counter("mp.overload.passes", out.overload_passes);
    m.add_counter("mp.overload.sheds", out.sheds);
    m.add_counter("mp.overload.takeovers", out.takeovers);
    // Busy fraction of each core over the whole run: entities of one core
    // never overlap, so the per-entity busy windows sum to processor time.
    const double horizon_ticks =
        static_cast<double>((spec.horizon - TimePoint::origin()).count());
    for (std::size_t c = 0; c < out.per_core.size(); ++c) {
      std::int64_t busy = 0;
      const auto& timeline = out.per_core[c].timeline;
      for (const auto& who : timeline.entities()) {
        for (const auto& iv : timeline.busy_intervals(who)) {
          busy += (iv.end - iv.begin).count();
        }
      }
      m.set_gauge("mp.core." + std::to_string(c) + ".utilization",
                  horizon_ticks > 0.0
                      ? static_cast<double>(busy) / horizon_ticks
                      : 0.0);
    }
    if (options.backend == ExecBackend::kThreads) {
      // The measurement the deterministic oracle can't make: wall-clock
      // throughput and response-time tails on real threads. The response
      // samples are virtual-time quantities (identical to the oracle's,
      // cross-validated by backend_equivalence_test); the *_per_sec gauges
      // and wall_seconds are host measurements and vary run to run.
      std::size_t served = 0;
      for (const auto& job : out.merged.jobs) {
        if (!job.served) continue;
        ++served;
        m.observe("threads.response_tu", job.response().to_tu());
      }
      if (threads_wall_seconds > 0.0) {
        m.set_gauge("threads.events_per_sec",
                    static_cast<double>(out.merged.timeline.records().size()) /
                        threads_wall_seconds);
        m.set_gauge("threads.jobs_per_sec",
                    static_cast<double>(served) / threads_wall_seconds);
      }
    }
  }
  return out;
}

}  // namespace

MpRunResult run(const model::SystemSpec& spec, const MpRunOptions& options) {
  return run(spec, Partitioner(options.strategy).partition(spec), options);
}

MpRunResult run(const model::SystemSpec& spec, Partition partition,
                const MpRunOptions& options) {
  switch (options.engine) {
    case RunEngine::kSim:
      return run_sim(spec, std::move(partition));
    case RunEngine::kExec:
      return run_exec(spec, std::move(partition), options);
  }
  TSF_PANIC("unknown run engine");
}

}  // namespace tsf::mp
