#include "mp/overload.h"

#include <algorithm>
#include <utility>

#include "common/diag.h"
#include "exp/cross_core.h"
#include "mp/channel.h"
#include "mp/mp_system.h"

namespace tsf::mp {

using common::Duration;
using common::TimePoint;

std::vector<common::InvariantChecker::Violation> check_overload_invariants(
    const model::SystemSpec& spec, const MpRunResult& run) {
  common::InvariantChecker checker;
  for (const auto& job : spec.aperiodic_jobs) {
    checker.add_job(job.name, job.relative_deadline.count());
  }
  // Per-core streams (un-namespaced entity names, already time-ordered).
  for (std::size_t c = 0; c < run.per_core.size(); ++c) {
    checker.set_core(c);
    for (const auto& r : run.per_core[c].timeline.records()) {
      checker.record(r.at, r.kind, r.who, r.value, r.note);
    }
  }
  for (const auto& event : run.merged.shed_events) {
    checker.note_shed_ledger(event.core, event.job, event.release.ticks(),
                             event.kind == model::ShedEvent::Kind::kTakeover);
  }
  return checker.finish();
}

OverloadGovernor::OverloadGovernor(exp::OverloadConfig config,
                                   ChannelFabric& fabric,
                                   const model::SystemSpec& spec,
                                   const Partition& partition)
    : config_(std::move(config)), fabric_(fabric) {
  TSF_ASSERT(config_.mode == exp::OverloadMode::kShed,
             "only mode 'shed' needs a governor");
  TSF_ASSERT(config_.threshold > 0.0, "overload_threshold must be positive");
  TSF_ASSERT(config_.period > Duration::zero(),
             "overload_period must be positive");
  TSF_ASSERT(partition.cores.size() == fabric_.cores(),
             "partition and fabric disagree on the core count");
  periodic_util_.reserve(partition.cores.size());
  for (const auto& core : partition.cores) {
    double u = 0.0;
    for (std::size_t i : core.tasks) u += spec.periodic_tasks[i].utilization();
    periodic_util_.push_back(u);
    serves_.push_back(core.has_server);
  }
  measured_ = periodic_util_;
  window_.resize(partition.cores.size());
  migrated_in_.assign(partition.cores.size(), Duration::zero());
  for (const auto& job : spec.aperiodic_jobs) {
    declared_[job.name] = job.effective_declared_cost();
  }
}

void OverloadGovernor::sample_loads(TimePoint boundary) {
  const auto& ledger = fabric_.deliveries();
  for (; ledger_seen_ < ledger.size(); ++ledger_seen_) {
    const auto& d = ledger[ledger_seen_];
    if (!d.ok) continue;
    if (d.kind != exp::ChannelDelivery::Kind::kSteal &&
        d.kind != exp::ChannelDelivery::Kind::kRebalance) {
      continue;
    }
    if (d.from_core == exp::ChannelDelivery::kNoCore ||
        d.to_core == exp::ChannelDelivery::kNoCore) {
      continue;
    }
    const auto it = declared_.find(d.job);
    if (it != declared_.end()) migrated_in_[d.to_core] += it->second;
  }

  for (std::size_t c = 0; c < fabric_.cores(); ++c) {
    const exp::CoreEndpoint* endpoint = fabric_.endpoint(c);
    const Duration released =
        endpoint != nullptr ? endpoint->released_cost() - migrated_in_[c]
                            : Duration::zero();
    auto& window = window_[c];
    window.push_back({boundary, released});
    while (window.size() >= 2 && window[1].at + config_.period <= boundary) {
      window.pop_front();
    }
    const Sample& base = window.front();
    const Duration span = boundary - base.at;
    const double aperiodic_rate =
        span > Duration::zero()
            ? (released - base.released_cost).to_tu() / span.to_tu()
            : 0.0;
    measured_[c] = periodic_util_[c] + aperiodic_rate;
  }
}

bool OverloadGovernor::shed_pass(TimePoint boundary) {
  bool ran = false;
  for (std::size_t c = 0; c < fabric_.cores(); ++c) {
    if (!serves_[c]) continue;
    if (measured_[c] <= config_.threshold) continue;
    exp::CoreEndpoint* endpoint = fabric_.endpoint(c);
    if (endpoint == nullptr) continue;
    ran = true;

    auto candidates = endpoint->shed_candidates();
    if (candidates.empty()) continue;
    // Lowest value density first: shedding frees the overshoot's worth of
    // declared cost while giving up the least scheduling value — the same
    // value-density ordering D-over's competitive argument is built on.
    // Ties break on (release, name) so the pass is deterministic for any
    // candidate enumeration order.
    std::sort(candidates.begin(), candidates.end(),
              [](const exp::CoreEndpoint::ShedCandidate& a,
                 const exp::CoreEndpoint::ShedCandidate& b) {
                const double da =
                    a.value / std::max(1.0, a.declared_cost.to_tu());
                const double db =
                    b.value / std::max(1.0, b.declared_cost.to_tu());
                if (da != db) return da < db;
                if (a.release != b.release) return a.release < b.release;
                return a.job < b.job;
              });

    // Budget: the overshoot rate sustained over one measurement window of
    // declared cost. Shedding more would throw away work a <=threshold core
    // could still serve; shedding less leaves the core re-triggering every
    // pass with the same backlog.
    const double overshoot = measured_[c] - config_.threshold;
    const double budget_tu = overshoot * config_.period.to_tu();
    double removed_tu = 0.0;
    for (const auto& cand : candidates) {
      if (removed_tu >= budget_tu) break;
      if (!endpoint->shed_exact(cand.job, cand.release)) continue;
      removed_tu += cand.declared_cost.to_tu();
      ++sheds_;
    }
  }
  (void)boundary;
  return ran;
}

void OverloadGovernor::on_epoch(TimePoint boundary) {
  sample_loads(boundary);
  if (boundary - last_pass_ < config_.period) return;
  if (shed_pass(boundary)) {
    ++passes_;
    last_pass_ = boundary;
  }
}

}  // namespace tsf::mp
