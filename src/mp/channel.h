// Cross-core event channels over the lock-step epochs of mp::MultiVm.
//
// Partitioned cores are deterministic silos; the only instants at which all
// of them agree on "now" are the epoch boundaries MultiVm drives them to.
// The ChannelFabric exploits exactly those instants: a handler on core A
// posts a message (a remote ServableAsyncEvent fire, or a migrating
// aperiodic job) into the target core's mailbox while its VM runs, and the
// fabric drains every mailbox when all VMs are paused at the next boundary.
// Because posts happen in core order within an epoch (MultiVm advances VMs
// sequentially) and deliveries happen in (due-time, post-sequence) order,
// multi-core runs with cross-core traffic stay bit-reproducible.
//
// Two channel types:
//  * remote fire — `fires = <job>` in the spec: at handler completion the
//    named job's event is fired on whichever core hosts it, at the first
//    epoch boundary >= completion + channel_latency.
//  * migration — `migrate = yes`: the job is bound to no core; at the first
//    boundary >= release + channel_latency the fabric releases it on the
//    least-loaded serving core (smallest pending queue, ties to the lowest
//    core id), measured at that same boundary.
//
// The price of epoch synchronization is quantization delay: a message waits
// out the remainder of its epoch. drain() records every message's
// posted/delivered pair so exp::compute_channel_metrics can report the
// induced latency distribution (p50/p95/p99) — making the MultiVm quantum a
// measurable tuning knob (bench/cross_core.cc sweeps it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/time.h"
#include "exp/cross_core.h"

namespace tsf::mp {

struct ChannelConfig {
  // Minimum in-flight time before a message may be delivered (on top of the
  // wait for the next epoch boundary). Zero: the next boundary alone.
  common::Duration latency = common::Duration::zero();
};

// One core's inbound queue. Messages are kept in post order; due ones are
// delivered by ChannelFabric::drain at epoch boundaries.
class Mailbox {
 public:
  struct Message {
    std::string job;
    std::size_t from_core = exp::ChannelDelivery::kNoCore;
    common::TimePoint posted = common::TimePoint::never();
    common::TimePoint due = common::TimePoint::never();
    std::uint64_t seq = 0;
  };

  TSF_BARRIER_ONLY
  void push(Message m) { in_flight_.push_back(std::move(m)); }
  bool empty() const { return in_flight_.empty(); }
  std::size_t size() const { return in_flight_.size(); }

  // Removes and returns every message with due <= boundary, preserving post
  // (seq) order among the taken. The whole queue is scanned: post order is
  // host core order, not virtual-time order, so due times are not monotone
  // along the deque and a due message may sit behind a not-yet-due one.
  TSF_BARRIER_ONLY
  std::vector<Message> take_due(common::TimePoint boundary);

 private:
  std::deque<Message> in_flight_;
};

class ChannelFabric {
 public:
  explicit ChannelFabric(std::size_t cores, ChannelConfig config = {});
  ~ChannelFabric();
  ChannelFabric(const ChannelFabric&) = delete;
  ChannelFabric& operator=(const ChannelFabric&) = delete;

  std::size_t cores() const { return mailboxes_.size(); }

  // --- wiring (done by MultiVm / mp::run before start) ---

  // The outbound port handed to core `core`'s ExecSystem.
  exp::CrossCorePort* port(std::size_t core);
  // The inbound endpoint deliveries go to.
  void connect(std::size_t core, exp::CoreEndpoint* endpoint);
  // The connected endpoint (nullptr before connect) — the scheduling-policy
  // engine reads queue depths and delivers pool/stolen jobs through this.
  exp::CoreEndpoint* endpoint(std::size_t core) const;
  // Routing-table entry: job `name` lives on `core`. Fires deferred while
  // the name was merely expected (see below) are flushed into the core's
  // mailbox here, in original post order.
  void bind(std::size_t core, const std::string& job);
  // Declares that `job` will be bound later (a registered migratable, or a
  // ready-pool job the scheduling policy dispatches at run time). A fire
  // posted to an expected-but-unbound name is deferred until the bind, not
  // recorded as a terminal routing failure.
  void expect(const std::string& job);
  // Registers a migratable job, released into the least-loaded serving core
  // at the first boundary >= release + latency.
  void add_migratable(exp::MigratedJob job, common::TimePoint release);

  // --- runtime ---

  // Posts a remote fire (normally reached via port(core)). The target core
  // comes from the routing table; an unbound name is recorded as a failed
  // delivery immediately. Barrier-only: the fabric's containers are plain —
  // under the threads backend, fires reach here via the staged-replay path
  // (mp/mailbox.h), never directly from a worker. The lock-step backend's
  // direct PortImpl -> post_fire call is the one reviewed exception (see
  // tools/tsf_lint.allow).
  TSF_BARRIER_ONLY
  void post_fire(std::size_t from_core, const std::string& job,
                 common::TimePoint posted);

  // The epoch hook: delivers every due message into its endpoint, in
  // (core, post-order) for fires and registration order for migrations.
  // All VMs must be paused at `boundary`. Returns messages delivered.
  TSF_BARRIER_ONLY
  std::size_t drain(common::TimePoint boundary);

  // Appends a terminal record to deliveries() — how the scheduling-policy
  // engine's pool dispatches and steals enter the same ledger (and the same
  // metrics / determinism checks) as the channel messages.
  void record(exp::ChannelDelivery delivery) {
    deliveries_.push_back(std::move(delivery));
  }

  // --- results ---

  // Every terminal message fate so far (delivered or failed), in delivery
  // order. Messages still in flight at the end of the run are *not* here;
  // see in_flight().
  const std::vector<exp::ChannelDelivery>& deliveries() const {
    return deliveries_;
  }
  std::size_t in_flight() const;
  std::uint64_t posted_count() const { return next_seq_; }

  // The shared load-balancing signal of migrations and the global ready
  // pool: the serving core with the shallowest pending queue (ties to the
  // lowest core id), or ChannelDelivery::kNoCore when nothing serves.
  std::size_t least_loaded_serving_core() const;

 private:
  struct PortImpl;

  struct PendingMigration {
    exp::MigratedJob job;
    common::TimePoint release;
    common::TimePoint due;
    bool delivered = false;
  };

  common::TimePoint due_after(common::TimePoint posted) const;

  ChannelConfig config_;
  std::vector<Mailbox> mailboxes_;
  std::vector<std::unique_ptr<PortImpl>> ports_;
  std::vector<exp::CoreEndpoint*> endpoints_;
  std::map<std::string, std::size_t> routes_;  // job name -> hosting core
  // Names that will be bound at run time (migratables, ready-pool jobs),
  // and the fires waiting for each of them (post order).
  std::set<std::string> expected_;
  std::map<std::string, std::vector<Mailbox::Message>> deferred_;
  std::vector<PendingMigration> migrations_;
  std::vector<exp::ChannelDelivery> deliveries_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tsf::mp
