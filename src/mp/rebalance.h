// Online load rebalancing at the lock-step epoch boundaries of mp::MultiVm.
//
// The offline partitioner (mp/partition.h) packs by *declared* utilization
// and then trusts the mapping for the whole run. Real traffic drifts: a
// bursty aperiodic stream can offer one core far more work than its server
// replica was sized for while a neighbour idles, and the packer's rejection
// list is simply abandoned even when the live machine turns out to have
// headroom (Pinho 2023 names exactly this static-mapping rigidity as the
// open problem for parallel real-time runtimes).
//
// The Rebalancer closes both gaps *online*, and deterministically: it runs
// inside the MultiVm epoch boundary — after the ChannelFabric drain and the
// scheduling-policy engine, while every per-core VM is paused — so its
// decisions depend only on (specs, quantum), never on host scheduling.
//
// Per epoch it samples each core's cumulative released aperiodic cost
// (CoreEndpoint::released_cost) and derives a *measured* utilization over a
// sliding window of `period`: the core's packed periodic load plus the
// offered aperiodic rate. Two triggers, gated by the mode:
//
//  * drift (modes kDrift and kAdmit) — when some core's measured
//    utilization exceeds its packed utilization by more than `drift`, the
//    pending unpinned requests of every drifted core are handed back to the
//    *existing* FFD/WFD/BFD packer (Partitioner::pack_items) against bins
//    loaded with the measured utilizations, and each request migrates to
//    its re-packed home through the fabric: release-preserving like a
//    `semi` steal, recorded exactly once in the channel ledger as a
//    ChannelDelivery::Kind::kRebalance.
//
//  * admission (mode kAdmit) — when the offline rejection list is non-empty
//    and measured headroom has appeared, rejected periodic tasks are
//    retried against the measured bins (each kept a `drift`-sized margin
//    below full) and admitted online on the chosen core
//    (CoreEndpoint::admit_task), released from the admission boundary
//    onward and ledgered as kRebalance with from_core == kNoCore. This is
//    deliberate bandwidth reclamation — admitting into server reservation
//    the workload measurably is not using — and therefore an optimistic,
//    irreversible bet: if the aperiodic stream resumes, the margin plus
//    the drift trigger's backlog migrations absorb it, but the admitted
//    task itself stays. Rejected server replicas are not admittable online
//    (a core without a server has no service machinery to grow one into
//    mid-run) and stay rejected.
//
// Passes are rate-limited to one per `period`, so the window and the
// cooldown share one knob — the spec's `rebalance_period`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/time.h"
#include "model/spec.h"
#include "mp/partition.h"

namespace tsf::mp {

class ChannelFabric;

enum class RebalanceMode {
  kOff,    // PR 1 behaviour: the offline mapping stands for the whole run
  kDrift,  // migrate pending work off cores whose measured load drifted
  kAdmit,  // kDrift + online admission of offline-rejected periodic tasks
};

const char* to_string(RebalanceMode mode);
// "off" | "drift" | "admit"; nullopt otherwise.
std::optional<RebalanceMode> parse_rebalance_mode(const std::string& text);

struct RebalanceConfig {
  RebalanceMode mode = RebalanceMode::kOff;
  // Trigger: measured minus packed utilization beyond which a core is
  // considered drifted ([run] rebalance_drift).
  double drift = 0.25;
  // Sliding measurement window and minimum gap between rebalance passes
  // ([run] rebalance_period).
  common::Duration period = common::Duration::time_units(6);
};

class Rebalancer {
 public:
  // `fabric`, `spec` and `partition` must outlive the Rebalancer; the
  // partition must be the one the MultiVm's per-core specs were split from.
  // `strategy` is re-used for the online re-pack, so offline and online
  // placement follow the same heuristic.
  Rebalancer(RebalanceConfig config, ChannelFabric& fabric,
             const model::SystemSpec& spec, const Partition& partition,
             PackingStrategy strategy);

  // The boundary hook: sample loads, then (rate-limited) migrate / admit.
  // Invoked by MultiVm::run_until after the fabric drain and the
  // scheduling-policy engine, while every VM is paused at `boundary`.
  TSF_BARRIER_ONLY
  void on_epoch(common::TimePoint boundary);

  // --- results ---
  std::uint64_t passes() const { return passes_; }
  std::uint64_t migrations() const { return migrations_; }
  std::uint64_t admissions() const { return admissions_; }
  // Offline-rejected items still unadmitted (server replicas always are).
  std::size_t still_rejected() const { return rejected_.size(); }
  // The most recent per-core measured utilization sample — the
  // post-rebalance load picture cli/report and the benches print.
  const std::vector<double>& measured_utilization() const {
    return measured_;
  }

 private:
  struct Sample {
    common::TimePoint at;
    common::Duration released_cost;
  };

  void sample_loads(common::TimePoint boundary);
  bool migrate_pass(common::TimePoint boundary);
  bool admit_pass(common::TimePoint boundary);

  RebalanceConfig config_;
  ChannelFabric& fabric_;
  const model::SystemSpec& spec_;
  Partitioner packer_;
  // Static per-core load the window measurement rides on: packed periodic
  // tasks (+ tasks admitted online later). The aperiodic side is measured,
  // not assumed.
  std::vector<double> periodic_util_;
  // The offline packer's verdict per core (tasks + server replica) — the
  // baseline that "drift" is measured against.
  std::vector<double> packed_util_;
  std::vector<bool> serves_;
  std::vector<std::deque<Sample>> window_;
  std::vector<double> measured_;
  // Declared cost moved *into* each core by a re-releasing delivery — a
  // kRebalance migration or a semi-policy kSteal (tracked through the
  // fabric ledger, so the policy engine's moves are covered too). The
  // re-release inflates the receiver's released_cost, so the load
  // measurement subtracts it: moved backlog is not freshly offered work,
  // and must not manufacture drift at its own target. kPool, kMigrate and
  // kFire deliveries are a job's *first* release on any core and count as
  // genuinely offered load.
  std::vector<common::Duration> migrated_in_;
  std::map<std::string, common::Duration> declared_;  // job -> declared cost
  std::size_t ledger_seen_ = 0;  // fabric deliveries already accounted
  std::vector<Rejection> rejected_;  // offline rejections not yet admitted
  common::TimePoint last_pass_ = common::TimePoint::origin();
  std::uint64_t passes_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t admissions_ = 0;
};

}  // namespace tsf::mp
