// Scheduling policies for the multiprocessor runtime.
//
// The partitioned baseline (PR 1) statically maps every job to one core; a
// backed-up pending queue on one core cannot be helped by an idle neighbour.
// This layer adds the two classic alternatives for comparison, both riding
// the deterministic lock-step epochs of mp::MultiVm:
//
//  * global — unpinned aperiodic jobs bypass the static split and enter one
//    shared priority-ordered ready pool. At every epoch boundary the pool is
//    drained: each due job goes to the serving core with the shallowest
//    pending queue (ties to the lowest core id), highest-priority job first.
//    The pool is a shared structure, not a channel, so no channel_latency
//    applies — its cost is pure epoch quantization (a job released mid-epoch
//    waits for the next boundary before it can even queue anywhere).
//
//  * semi-partitioned — the PR 1 packing is kept, but at every epoch
//    boundary an idle core (empty pending queue) steals the
//    highest-priority eligible job from the most-loaded core's pending
//    queue (depth >= 2, so the victim keeps local work). The steal moves
//    the pending request — never a running job — and preserves its original
//    release instant, so response times stay honest and stealing is exactly
//    as bit-reproducible as the fabric drains it runs beside.
//
// Job priority for both the pool and the steal ordering: higher
// effective_value first, then earlier release, then job name — a key that
// is independent of spec declaration order, which is what keeps the
// declaration-order-invariance determinism property of the PR 2 suite true
// under the new policies as well.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/time.h"
#include "exp/cross_core.h"

namespace tsf::mp {

class ChannelFabric;

enum class SchedPolicy {
  kPartitioned,      // PR 1: static split, no cross-core job movement
  kGlobal,           // shared priority-ordered ready pool
  kSemiPartitioned,  // static split + deterministic work stealing
};

const char* to_string(SchedPolicy policy);
// "partitioned" | "global" | "semi" | "semi-partitioned"; nullopt otherwise.
std::optional<SchedPolicy> parse_sched_policy(const std::string& text);

// The ordering key of the pool and the steal chooser is
// exp::schedules_before (cross_core.h) — shared with the ExecSystem side.

// The epoch-boundary scheduler. Owned by mp::run (exec engine) for the
// non-partitioned policies and invoked by MultiVm::run_until right after the
// fabric drain at every boundary (all VMs paused, queue depths stable).
// Records every pool dispatch / steal as a ChannelDelivery through the
// fabric, so the existing metrics and determinism machinery see them.
class SchedPolicyEngine {
 public:
  SchedPolicyEngine(SchedPolicy policy, ChannelFabric& fabric);

  SchedPolicy policy() const { return policy_; }

  // Registers an unpinned job in the shared ready pool (global policy).
  // The job becomes dispatchable at the first epoch boundary >= release.
  void add_pool_job(exp::MigratedJob job, common::TimePoint release);

  // The boundary hook: drains the due part of the pool (global) or runs one
  // steal pass (semi-partitioned). Deterministic in (specs, quantum).
  TSF_BARRIER_ONLY
  void on_epoch(common::TimePoint boundary);

  // --- results ---
  std::uint64_t pool_dispatches() const { return pool_dispatches_; }
  std::uint64_t steal_count() const { return steals_; }
  // Pool jobs still waiting at the end of the run.
  std::size_t pool_pending() const;

 private:
  struct PoolEntry {
    exp::MigratedJob job;
    common::TimePoint release;
    bool dispatched = false;
  };

  void drain_pool(common::TimePoint boundary);
  void steal_pass(common::TimePoint boundary);

  SchedPolicy policy_;
  ChannelFabric& fabric_;
  std::vector<PoolEntry> pool_;
  std::uint64_t pool_dispatches_ = 0;
  std::uint64_t steals_ = 0;
};

}  // namespace tsf::mp
