// Lowering a multi-core SystemSpec onto the partitioned runtime.
//
// The flow mirrors the uniprocessor experiment harness, with one extra
// stage: partition → split into per-core uniprocessor specs → run each core
// on the chosen engine (the theoretical simulator, or the RTSJ-style VM via
// MultiVm in lock-step) → merge the per-core results back into one
// RunResult whose timeline is namespaced per core ("c0/tau1", "c2/server").
//
// Feasibility follows the same shape: partition, then per-core response-time
// analysis (analysis/partitioned.h), folded with the packer's rejection
// list into a single system-level verdict.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/partitioned.h"
#include "common/metrics_registry.h"
#include "common/time.h"
#include "common/trace_sink.h"
#include "exp/cross_core.h"
#include "exp/exec_runner.h"
#include "model/run_result.h"
#include "model/spec.h"
#include "mp/partition.h"
#include "mp/rebalance.h"
#include "mp/sched_policy.h"

namespace tsf::mp {

// Which substrate drives the per-core VMs on the exec path:
//  * kLockstep — mp::MultiVm, one driver thread advancing every core
//    sequentially to common epoch boundaries. Bit-reproducible; the oracle.
//  * kThreads — mp::ThreadedRuntime, one pinned OS worker per core running
//    concurrently between boundaries, cross-core fires staged through
//    lock-free MPSC mailboxes and replayed in oracle order at each
//    boundary. Same virtual-time results (cross-validated by
//    tests/mp/backend_equivalence_test.cc), plus wall-clock throughput and
//    tail-latency measurement ("threads.*" metrics).
enum class ExecBackend { kLockstep, kThreads };

const char* to_string(ExecBackend backend);
std::optional<ExecBackend> parse_exec_backend(std::string_view name);

// Which engine mp::run drives per core:
//  * kSim — one sim::Simulator per core (theoretical policies, resumable
//    service, no fabric: the static partition is final).
//  * kExec — one RTSJ-style VM per core (implemented policies, lock-step or
//    threaded time, channel fabric, policies/rebalance/overload live here).
enum class RunEngine { kSim, kExec };

const char* to_string(RunEngine engine);
std::optional<RunEngine> parse_run_engine(std::string_view name);

struct MpRunOptions {
  // Which per-core engine runs the partition (see RunEngine).
  RunEngine engine = RunEngine::kExec;
  PackingStrategy strategy = PackingStrategy::kFirstFitDecreasing;
  // How jobs move (or don't) between cores at run time (exec path only;
  // the simulator has no fabric and always runs the static partition).
  SchedPolicy policy = SchedPolicy::kPartitioned;
  // Execution-engine options (ignored by the simulator path).
  exp::ExecOptions exec;
  // Execution substrate (exec path only): the lock-step oracle or the
  // real-threads measurement backend.
  ExecBackend backend = ExecBackend::kLockstep;
  // Lock-step epoch of the MultiVm (execution path only).
  common::Duration quantum = common::Duration::time_units(1);
  // Online load rebalancing at the epoch boundaries (exec path only; the
  // simulator has no fabric and always runs the static partition).
  RebalanceConfig rebalance;
  // The overload policy rides in exec.overload (exp/overload.h): kDover is
  // lowered into each serving core's pending queue by the ExecSystem; kShed
  // constructs an OverloadGovernor that runs last at every boundary.
  // Optional streaming trace sinks, one per core (exec path only). Entry k,
  // when non-null, receives core k's full record stream alongside the
  // materialized per-core timeline. May be shorter than the core count.
  std::vector<common::TraceSink*> core_trace_sinks;
  // Optional runtime-counter registry (exec path only): epoch, fabric,
  // policy and rebalance counters plus per-core utilization gauges are
  // recorded here during and after the run.
  common::MetricsRegistry* metrics = nullptr;
};

// Per-core uniprocessor specs for a partition of `spec`: core k gets the
// tasks and jobs assigned to it, a copy of the server iff the partition
// placed a replica there, spec.horizon, and cores == 1. Job affinities are
// preserved from the parent spec (affinity == -1 marks a job the
// semi-partitioned stealer may move). Rejected tasks are in no core — they
// simply don't run, exactly like an offline admission refusal. Migratable
// jobs (`migrate`) are in no core either: on the exec path the channel
// fabric releases them onto the least-loaded core at run time; the
// simulator path (which has no fabric) leaves them unserved. Under the
// global policy every unpinned, untriggered job additionally bypasses the
// split — it belongs to the shared ready pool, not to any core.
std::vector<model::SystemSpec> split_spec(
    const model::SystemSpec& spec, const Partition& partition,
    SchedPolicy policy = SchedPolicy::kPartitioned);

// Merges per-core results: aperiodic outcomes in original spec order,
// periodic outcomes sorted by (release, task), timelines concatenated with
// "c<k>/" entity prefixes and stably merged by time, counters summed.
//
// Outcomes are NOT per-core-disjoint once jobs move at run time: a stolen
// job completes on a non-home core while the home core still books the
// same (job, release) as unserved pending work it lost. The merge
// deduplicates by (job, release), keeping the most-final outcome
// (served > interrupted > unserved; ties to the lowest core).
model::RunResult merge_results(const model::SystemSpec& spec,
                               const Partition& partition,
                               const std::vector<model::RunResult>& per_core);

struct MpFeasibility {
  Partition partition;
  analysis::PartitionedFeasibility per_core;
  // System verdict: every item placed AND every core's RTA passes.
  bool feasible = false;
};

// Partition + per-core RTA in one step.
MpFeasibility analyze(
    const model::SystemSpec& spec,
    PackingStrategy strategy = PackingStrategy::kFirstFitDecreasing);

struct MpRunResult {
  Partition partition;
  std::vector<model::RunResult> per_core;  // core order
  model::RunResult merged;
  // Cross-core channel traffic (exec path only): every terminal message
  // fate, in delivery order — remote fires and migrations, plus the
  // scheduling policy's pool dispatches (kPool) and steals (kSteal) — and
  // how many messages (and undispatched pool jobs) were still in flight at
  // the horizon. Feed to exp::compute_channel_metrics for the latency
  // distribution.
  std::vector<exp::ChannelDelivery> channel_deliveries;
  std::size_t channel_in_flight = 0;
  // Scheduling-policy counters (zero under the partitioned baseline).
  std::uint64_t pool_dispatches = 0;
  std::uint64_t steals = 0;
  // Online-rebalancing results (zero / empty when rebalance = off). The
  // migrations and admissions also appear, exactly once each, as
  // kRebalance records in channel_deliveries.
  std::uint64_t rebalance_passes = 0;
  std::uint64_t rebalance_migrations = 0;
  std::uint64_t rebalance_admissions = 0;
  std::size_t rebalance_still_rejected = 0;
  // The last measured per-core utilization sample — the post-rebalance
  // load picture.
  std::vector<double> rebalance_utilization;
  // Overload-policy results (zero / empty when overload = off). Every shed
  // and takeover also appears, exactly once each, as a kShed / kTakeover
  // record in channel_deliveries and in merged.shed_events (core filled
  // in) — the exactly-once ledger the invariant checker reconciles.
  std::uint64_t overload_passes = 0;
  std::uint64_t sheds = 0;
  std::uint64_t takeovers = 0;
  // The governor's last measured per-core utilization sample (mode shed).
  std::vector<double> overload_utilization;
};

// THE entry point: partition `spec` (or take the caller's partition), run
// every core on options.engine, merge. The second form lets a driver pack
// once and reuse the assignment across analysis, sim and exec.
MpRunResult run(const model::SystemSpec& spec,
                const MpRunOptions& options = {});
MpRunResult run(const model::SystemSpec& spec, Partition partition,
                const MpRunOptions& options = {});

// --- deprecated spellings (pre-unification): the engine is an option now,
//     not a function name. Thin wrappers; new code calls mp::run. ---

[[deprecated("use mp::run with options.engine = RunEngine::kSim")]]
inline MpRunResult run_partitioned_sim(const model::SystemSpec& spec,
                                       const MpRunOptions& options = {}) {
  MpRunOptions o = options;
  o.engine = RunEngine::kSim;
  return run(spec, o);
}

[[deprecated("use mp::run with options.engine = RunEngine::kExec")]]
inline MpRunResult run_partitioned_exec(const model::SystemSpec& spec,
                                        const MpRunOptions& options = {}) {
  MpRunOptions o = options;
  o.engine = RunEngine::kExec;
  return run(spec, o);
}

[[deprecated("use mp::run with options.engine = RunEngine::kSim")]]
inline MpRunResult run_partitioned_sim(const model::SystemSpec& spec,
                                       Partition partition,
                                       const MpRunOptions& options = {}) {
  MpRunOptions o = options;
  o.engine = RunEngine::kSim;
  return run(spec, std::move(partition), o);
}

[[deprecated("use mp::run with options.engine = RunEngine::kExec")]]
inline MpRunResult run_partitioned_exec(const model::SystemSpec& spec,
                                        Partition partition,
                                        const MpRunOptions& options = {}) {
  MpRunOptions o = options;
  o.engine = RunEngine::kExec;
  return run(spec, std::move(partition), o);
}

}  // namespace tsf::mp
