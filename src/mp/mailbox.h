// Lock-free MPSC mailboxes for the real-threads execution backend.
//
// Under `backend = threads` every core's worker runs concurrently inside an
// epoch, so a handler completing on core A cannot touch the ChannelFabric
// directly (the fabric's routing table and mailboxes are plain containers,
// and the lock-step delivery order would be lost anyway). Instead each
// outbound fire is *staged*: pushed into one shared MpscQueue as a
// StagedFire carrying its producing core and a per-producer sequence
// number. The epoch-barrier coordinator — the single consumer — drains the
// queue while every worker is parked at the barrier, sorts the batch into
// replay order, and replays it through ChannelFabric::post_fire.
//
// Replay order is what makes the threads backend bit-reproducible against
// the lock-step oracle: MultiVm advances VMs sequentially within an epoch,
// so the fabric's global post order is exactly (core, per-core post order)
// per epoch. Sorting an epoch's staged fires by (from_core, seq) therefore
// reconstructs the oracle's post order no matter how the OS interleaved the
// workers.
//
// The queue itself is Dmitry Vyukov's non-intrusive MPSC design: producers
// exchange the head pointer (wait-free) and then publish the link; the
// single consumer chases the links from a stub node. Per-producer FIFO is
// inherited from the head's modification order. The consumer may observe a
// transiently broken link (a producer between exchange and publish), in
// which case pop() returns false; here the consumer only drains at epoch
// barriers, when every producer is quiescent and ordered before it, so a
// drain loop always sees the complete batch.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/time.h"

namespace tsf::mp {

// One staged cross-core fire: everything ChannelFabric::post_fire needs,
// plus the (from_core, seq) replay key.
struct StagedFire {
  std::string job;
  std::size_t from_core = 0;
  common::TimePoint posted = common::TimePoint::never();
  // Per-producer sequence number (each core's port counts its own posts);
  // combined with from_core it totally orders an epoch's batch.
  std::uint64_t seq = 0;
};

// Sorts an epoch's drained batch into the lock-step oracle's post order:
// by producing core, then per-producer sequence.
TSF_DETERMINISM_CRITICAL
void sort_replay_order(std::vector<StagedFire>* batch);

// Vyukov non-intrusive MPSC queue with node pooling. push() is safe from
// any number of threads concurrently; pop() must only ever be called from
// one consumer thread at a time. Unbounded.
//
// Nodes are recycled through a lock-free free stack instead of being
// heap-allocated per push, so after the first epoch's high-water mark the
// steady-state loop allocates nothing. The stack is ABA-safe *only* under
// this file's barrier protocol: producers pop free nodes mid-epoch (pops
// alone cannot ABA — a popped node is never re-pushed until the barrier),
// and only the consumer pushes, via recycle(), while every producer is
// parked at the barrier. pop() therefore stashes spent nodes on a
// consumer-local list; recycle() publishes the stash when quiescence makes
// that safe.
template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  ~MpscQueue() {
    Node* n = tail_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
    free_list(stash_);
    free_list(free_head_.load(std::memory_order_relaxed));
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Multi-producer: wait-free exchange on the head, then link publication.
  // Reuses a pooled node when one is available (the value is move-assigned
  // into it, so e.g. a recycled string's buffer is itself reused).
  TSF_WORKER_PHASE TSF_REALTIME
  void push(T value) {
    Node* n = acquire_node();
    n->value = std::move(value);
    Node* prev = head_.exchange(n, std::memory_order_acq_rel);
    prev->next.store(n, std::memory_order_release);
  }

  // Single-consumer. Returns false when empty — or when the next link is
  // not yet published (a producer paused between exchange and publish);
  // callers that need a complete drain must only rely on it after
  // synchronizing with every producer.
  TSF_BARRIER_ONLY TSF_NO_ALLOC
  bool pop(T* out) {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    *out = std::move(next->value);
    tail_ = next;
    tail->next.store(stash_, std::memory_order_relaxed);
    stash_ = tail;
    return true;
  }

  // Consumer-only, and only while every producer is quiescent (parked at
  // the epoch barrier): publishes the nodes spent by pop() back onto the
  // free stack for next epoch's pushes.
  TSF_BARRIER_ONLY TSF_NO_ALLOC
  void recycle() {
    if (stash_ == nullptr) return;
    Node* last = stash_;
    while (Node* next = last->next.load(std::memory_order_relaxed)) {
      last = next;
    }
    last->next.store(free_head_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    free_head_.store(stash_, std::memory_order_release);
    stash_ = nullptr;
  }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  Node* acquire_node() {
    Node* top = free_head_.load(std::memory_order_acquire);
    while (top != nullptr) {
      // Benign race: `top` may be concurrently popped and already back in
      // the live queue, making this ->next read stale — but then the CAS
      // fails (no push happens mid-epoch, so the head cannot ABA back).
      Node* next = top->next.load(std::memory_order_relaxed);
      if (free_head_.compare_exchange_weak(top, next,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        top->next.store(nullptr, std::memory_order_relaxed);
        return top;
      }
    }
    // TSF_LINT_ALLOW[rt-alloc]: pool-growth point, reached only until the
    // first epoch's high-water mark; steady-state pushes pop the free stack.
    return new Node();
  }

  static void free_list(Node* n) {
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  std::atomic<Node*> head_;  // producers exchange here
  alignas(64) Node* tail_;   // consumer-owned; stub-chasing pointer
  alignas(64) std::atomic<Node*> free_head_{nullptr};  // pooled nodes
  Node* stash_ = nullptr;  // consumer-local, published by recycle()
};

}  // namespace tsf::mp
