// ThreadedRuntime — the real-threads execution backend (`backend = threads`).
//
// MultiVm's sibling: the same per-core worlds (one rtsj::vm::VirtualMachine
// + exp::ExecSystem per core, the same ChannelFabric / SchedPolicyEngine /
// Rebalancer boundary hooks), but each core is driven by its own OS worker
// thread, pinned to a CPU where the platform allows it. Workers advance
// their VMs through the same epoch-boundary sequence concurrently and meet
// at a std::barrier; the barrier's completion function — running on exactly
// one thread, synchronized against all workers by the barrier itself — does
// the boundary work: replay the epoch's staged cross-core fires into the
// fabric in oracle order, drain, run the scheduling policy and rebalancer,
// bump metrics.
//
// Why the result is bit-identical to the lock-step oracle: within one
// epoch a core's VM is a closed deterministic world (cross-core effects
// only enter at boundaries), so each worker's epoch is independent of host
// scheduling; and the staged-fire replay (mp/mailbox.h) reconstructs the
// oracle's global post order from the (from_core, per-producer seq) keys.
// Every boundary decision therefore sees exactly the state the lock-step
// backend would — the determinism suites stay the oracle, and the threads
// backend adds the measurement the oracle can't make: wall-clock throughput
// and tail latency on real silicon ("threads.*" metrics).
//
// What is NOT reproducible run-to-run: the wall-clock numbers themselves
// (threads.wall_seconds, mp.epoch.host_seconds). Everything virtual-time —
// traces, outcomes, channel ledger, response distributions — is.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "common/annotations.h"
#include "common/metrics_registry.h"
#include "common/time.h"
#include "common/trace_sink.h"
#include "exp/exec_runner.h"
#include "mp/mailbox.h"
#include "model/run_result.h"
#include "model/spec.h"
#include "rtsj/vm/vm.h"

namespace tsf::mp {

class ChannelFabric;
class OverloadGovernor;
class Rebalancer;
class SchedPolicyEngine;

class ThreadedRuntime {
 public:
  // Mirrors MultiVm's constructor contract: one VM + ExecSystem per spec,
  // every job bound into the fabric's routing table, endpoints connected in
  // core order. The fabric is required (it is the cross-core substrate the
  // staged fires replay into); engine, rebalancer and governor are optional
  // and must outlive the runtime, like the fabric.
  ThreadedRuntime(std::vector<model::SystemSpec> per_core_specs,
                  const exp::ExecOptions& options, ChannelFabric* fabric,
                  SchedPolicyEngine* engine = nullptr,
                  Rebalancer* rebalancer = nullptr,
                  OverloadGovernor* governor = nullptr);
  ~ThreadedRuntime();
  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  std::size_t cores() const { return vms_.size(); }

  // Same contract as MultiVm::attach_trace_sink: call before run(); the
  // sink must outlive the runtime. The sink is only ever written by core
  // `core`'s worker thread during run() (and the join in run() orders those
  // writes before run() returns).
  void attach_trace_sink(std::size_t core, common::TraceSink* sink);

  // Runtime counters ("mp.epochs", "mp.fabric.deliveries", ... — the same
  // names the lock-step backend emits, so downstream consumers are backend
  // agnostic) plus the wall-clock gauges ("threads.wall_seconds",
  // "threads.workers_pinned"). Only touched from the barrier completion
  // function and after the join — never concurrently.
  void set_metrics(common::MetricsRegistry* metrics) { metrics_ = metrics; }

  // Runs the whole horizon: spawns one worker per core, pins it (best
  // effort), starts the core's world on that thread (so the world's fiber
  // threads inherit the affinity), drives the epoch sequence, joins. Not
  // resumable — one call per runtime. Rethrows the first error a core's
  // world raised (after all workers have unwound).
  void run(common::TimePoint horizon,
           common::Duration quantum = common::Duration::time_units(1));

  // Per-core results, in core order. Destructive; call once after run().
  std::vector<model::RunResult> collect();

  // Wall-clock seconds spent inside run()'s epoch loop, and how many
  // workers the platform actually pinned (0 on hosts without
  // pthread_setaffinity_np).
  double wall_seconds() const { return wall_seconds_; }
  std::size_t workers_pinned() const {
    return pinned_.load(std::memory_order_relaxed);
  }

 private:
  struct BoundaryFn {
    ThreadedRuntime* runtime;
    void operator()() noexcept { runtime->on_boundary(); }
  };
  friend struct BoundaryFn;
  struct StagedPort;

  // The barrier completion step: staged-fire replay in oracle order, fabric
  // drain, policy engine, rebalancer, overload governor, metrics. Runs on
  // one worker thread while every other worker is parked at the barrier.
  TSF_BARRIER_ONLY
  void on_boundary() noexcept;
  void record_failure(std::exception_ptr error);

  // Destruction order matters (as in MultiVm): systems_ before vms_.
  std::vector<std::unique_ptr<rtsj::vm::VirtualMachine>> vms_;
  std::vector<std::unique_ptr<exp::ExecSystem>> systems_;
  std::vector<std::unique_ptr<StagedPort>> ports_;
  ChannelFabric* fabric_ = nullptr;
  SchedPolicyEngine* engine_ = nullptr;
  Rebalancer* rebalancer_ = nullptr;
  OverloadGovernor* governor_ = nullptr;
  common::MetricsRegistry* metrics_ = nullptr;
  std::vector<std::unique_ptr<common::TeeSink>> tees_;

  // The one shared staging queue every core's port pushes into; drained
  // only by the barrier completion function.
  MpscQueue<StagedFire> staged_;
  std::vector<StagedFire> replay_;  // reused per-boundary batch buffer

  // Epoch cursor for the completion function; workers track the identical
  // sequence locally (same arithmetic, same inputs).
  common::TimePoint now_ = common::TimePoint::origin();
  common::TimePoint horizon_ = common::TimePoint::origin();
  common::Duration quantum_ = common::Duration::time_units(1);
  std::chrono::steady_clock::time_point epoch_begin_;

  std::atomic<bool> failed_{false};
  std::atomic<std::size_t> pinned_{0};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  double wall_seconds_ = 0.0;
  bool ran_ = false;
};

}  // namespace tsf::mp
