#include "mp/sched_policy.h"

#include <algorithm>

#include "common/diag.h"
#include "mp/channel.h"

namespace tsf::mp {

using common::TimePoint;

const char* to_string(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kPartitioned:
      return "partitioned";
    case SchedPolicy::kGlobal:
      return "global";
    case SchedPolicy::kSemiPartitioned:
      return "semi-partitioned";
  }
  return "?";
}

std::optional<SchedPolicy> parse_sched_policy(const std::string& text) {
  if (text == "partitioned") return SchedPolicy::kPartitioned;
  if (text == "global") return SchedPolicy::kGlobal;
  if (text == "semi" || text == "semi-partitioned") {
    return SchedPolicy::kSemiPartitioned;
  }
  return std::nullopt;
}

SchedPolicyEngine::SchedPolicyEngine(SchedPolicy policy, ChannelFabric& fabric)
    : policy_(policy), fabric_(fabric) {}

void SchedPolicyEngine::add_pool_job(exp::MigratedJob job, TimePoint release) {
  TSF_ASSERT(policy_ == SchedPolicy::kGlobal,
             "the shared ready pool exists only under the global policy");
  // Fires targeting this job before its dispatch must wait for the bind,
  // not fail: the job has no core yet, but it will get one.
  fabric_.expect(job.name);
  PoolEntry entry;
  entry.job = std::move(job);
  entry.release = release;
  pool_.push_back(std::move(entry));
}

void SchedPolicyEngine::on_epoch(TimePoint boundary) {
  switch (policy_) {
    case SchedPolicy::kPartitioned:
      break;  // nothing to do; the engine is normally not even constructed
    case SchedPolicy::kGlobal:
      drain_pool(boundary);
      break;
    case SchedPolicy::kSemiPartitioned:
      steal_pass(boundary);
      break;
  }
}

void SchedPolicyEngine::drain_pool(TimePoint boundary) {
  // Due jobs leave the pool in priority order; each goes to the serving
  // core with the shallowest pending queue at that moment. deliver_job
  // pushes into the target's pending queue synchronously (the VMs are
  // paused), so one boundary's earlier dispatches are visible as load to
  // its later ones — the pool self-balances within a single drain.
  std::vector<std::size_t> due;
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (!pool_[i].dispatched && pool_[i].release <= boundary) due.push_back(i);
  }
  std::sort(due.begin(), due.end(), [this](std::size_t a, std::size_t b) {
    return exp::schedules_before(
        pool_[a].job.effective_value(), pool_[a].release, pool_[a].job.name,
        pool_[b].job.effective_value(), pool_[b].release, pool_[b].job.name);
  });

  for (std::size_t i : due) {
    PoolEntry& entry = pool_[i];
    const std::size_t chosen = fabric_.least_loaded_serving_core();
    entry.dispatched = true;
    exp::ChannelDelivery d;
    d.kind = exp::ChannelDelivery::Kind::kPool;
    d.job = entry.job.name;
    d.posted = entry.release;
    if (chosen == exp::ChannelDelivery::kNoCore) {
      // No serving core anywhere: terminal failure, like a migration's.
      fabric_.record(std::move(d));
      continue;
    }
    fabric_.endpoint(chosen)->deliver_job(entry.job, entry.release);
    // The job now has a home: later fires can route to it.
    fabric_.bind(chosen, entry.job.name);
    d.to_core = chosen;
    d.delivered = boundary;
    d.ok = true;
    ++pool_dispatches_;
    fabric_.record(std::move(d));
  }
}

void SchedPolicyEngine::steal_pass(TimePoint boundary) {
  // Thieves in core order; at most one steal per thief per boundary (keeps
  // the pass cheap and prevents one idle core from emptying a victim whose
  // own server would have drained the queue next epoch anyway). Victims in
  // decreasing-depth order (ties to the lowest core id) and only when at
  // least two requests are pending, so the victim always keeps local work.
  for (std::size_t thief = 0; thief < fabric_.cores(); ++thief) {
    exp::CoreEndpoint* taker = fabric_.endpoint(thief);
    if (taker == nullptr || !taker->serves_aperiodics()) continue;
    if (taker->queue_depth() != 0) continue;

    std::vector<std::pair<std::size_t, std::size_t>> victims;  // (depth, core)
    for (std::size_t core = 0; core < fabric_.cores(); ++core) {
      if (core == thief) continue;
      exp::CoreEndpoint* endpoint = fabric_.endpoint(core);
      if (endpoint == nullptr || !endpoint->serves_aperiodics()) continue;
      const std::size_t depth = endpoint->queue_depth();
      if (depth >= 2) victims.emplace_back(depth, core);
    }
    std::sort(victims.begin(), victims.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });

    for (const auto& [depth, victim] : victims) {
      auto stolen = fabric_.endpoint(victim)->steal_pending();
      if (!stolen.has_value()) continue;  // nothing eligible; next victim
      taker->deliver_job(stolen->job, stolen->release);
      ++steals_;
      exp::ChannelDelivery d;
      d.kind = exp::ChannelDelivery::Kind::kSteal;
      d.job = stolen->job.name;
      d.from_core = victim;
      d.to_core = thief;
      d.posted = stolen->release;
      d.delivered = boundary;
      d.ok = true;
      fabric_.record(std::move(d));
      break;  // this thief is no longer idle
    }
  }
}

std::size_t SchedPolicyEngine::pool_pending() const {
  std::size_t n = 0;
  for (const auto& entry : pool_) n += entry.dispatched ? 0 : 1;
  return n;
}

}  // namespace tsf::mp
