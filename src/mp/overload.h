// Utilization-based admission control at the lock-step epoch boundaries —
// the `[run] overload = shed` policy.
//
// The governor runs inside the MultiVm / ThreadedRuntime boundary, after the
// fabric drain, the scheduling-policy engine and the rebalancer, while every
// per-core VM is paused — so its decisions depend only on (specs, quantum),
// never on host scheduling. Per epoch it measures each core's utilization
// exactly the way the rebalancer does (packed periodic load + offered
// aperiodic rate over a sliding window of `period`, compensated for work
// migrated in by steals/rebalances); when a core's measured utilization
// exceeds `threshold`, the pass drops pending *sheddable* work — firm
// (deadline-carrying), released before the boundary, not being served — in
// lowest-value-density-first order until the overshoot's worth of declared
// cost is gone. Every drop goes through CoreEndpoint::shed_exact, which
// records the shed outcome, the kShed trace record and the exactly-once
// ledger entry the invariant checker reconciles
// (FORBIDDEN_BEHAVIOR_CATALOG.md).
//
// Passes are rate-limited to one per `period`, sharing the knob with the
// measurement window — the spec's `overload_period`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/invariant_checker.h"
#include "common/time.h"
#include "exp/overload.h"
#include "model/spec.h"
#include "mp/partition.h"

namespace tsf::mp {

class ChannelFabric;
struct MpRunResult;

// Replays a finished run through the forbidden-behavior checker
// (common/invariant_checker.h): per-core timelines stream in core order,
// the merged shed/takeover ledger reconciles against the kShed records.
// Empty result == conforming run; every passing storm run must be. Works
// for ANY overload mode, including off (where it degenerates to "nothing
// was shed and no ledger exists").
std::vector<common::InvariantChecker::Violation> check_overload_invariants(
    const model::SystemSpec& spec, const MpRunResult& run);

class OverloadGovernor {
 public:
  // `fabric`, `spec` and `partition` must outlive the governor; the
  // partition must be the one the per-core specs were split from. Only mode
  // kShed needs a governor (kDover sheds inside the per-core queues).
  OverloadGovernor(exp::OverloadConfig config, ChannelFabric& fabric,
                   const model::SystemSpec& spec, const Partition& partition);

  // The boundary hook: sample loads, then (rate-limited) shed overshoot.
  // Invoked last at every epoch boundary, while every VM is paused there.
  TSF_BARRIER_ONLY
  void on_epoch(common::TimePoint boundary);

  // --- results ---
  std::uint64_t passes() const { return passes_; }
  std::uint64_t sheds() const { return sheds_; }
  const std::vector<double>& measured_utilization() const {
    return measured_;
  }

 private:
  struct Sample {
    common::TimePoint at;
    common::Duration released_cost;
  };

  void sample_loads(common::TimePoint boundary);
  bool shed_pass(common::TimePoint boundary);

  exp::OverloadConfig config_;
  ChannelFabric& fabric_;
  std::vector<double> periodic_util_;
  std::vector<bool> serves_;
  std::vector<std::deque<Sample>> window_;
  std::vector<double> measured_;
  // Same released-cost compensation as the rebalancer: declared cost moved
  // *into* each core by a re-releasing delivery (kSteal / kRebalance) is
  // not freshly offered load.
  std::vector<common::Duration> migrated_in_;
  std::map<std::string, common::Duration> declared_;
  std::size_t ledger_seen_ = 0;
  common::TimePoint last_pass_ = common::TimePoint::origin();
  std::uint64_t passes_ = 0;
  std::uint64_t sheds_ = 0;
};

}  // namespace tsf::mp
