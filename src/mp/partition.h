// Taskset partitioning for the multiprocessor runtime.
//
// Partitioned fixed-priority scheduling maps every schedulable object to
// exactly one core and then runs an independent uniprocessor scheduler per
// core — the practical route from single-core real-time theory to parallel
// hardware (Pinho 2023, "Real-Time Parallel Programming: State of Play and
// Open Issues"). The mapping itself is utilization-based bin packing with
// the three classic decreasing-order heuristics.
//
// Items are the spec's periodic tasks plus, when the spec has an aperiodic
// server, one server replica per core: replicating the server gives every
// core local aperiodic service capacity, which is what lets served-event
// throughput scale with the core count (see bench/mp_scaling.cc). Server
// replicas are pinned items — they still flow through the packer so each
// bin's load accounts for them, and a server that doesn't fit is reported
// in the rejection list like any other item.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/spec.h"

namespace tsf::mp {

enum class PackingStrategy {
  kFirstFitDecreasing,  // first core with room (minimises fragmentation ops)
  kWorstFitDecreasing,  // emptiest core (balances load across cores)
  kBestFitDecreasing,   // fullest core with room (packs tightly, frees cores)
};

const char* to_string(PackingStrategy strategy);

// One packed item, for diagnostics and the rejection list.
struct PartitionItem {
  enum class Kind { kTask, kServer };
  Kind kind = Kind::kTask;
  // Index into spec.periodic_tasks for tasks; core id for server replicas.
  std::size_t index = 0;
  std::string name;
  double utilization = 0.0;
  int affinity = -1;
};

struct Rejection {
  PartitionItem item;
  std::string reason;
};

struct CoreAssignment {
  // Indices into spec.periodic_tasks, in packing order.
  std::vector<std::size_t> tasks;
  // Whether this core hosts a replica of the spec's server.
  bool has_server = false;
  // Indices into spec.aperiodic_jobs routed to this core.
  std::vector<std::size_t> jobs;
  // Packed utilization: server replica + assigned tasks.
  double utilization = 0.0;
};

struct Partition {
  std::vector<CoreAssignment> cores;
  std::vector<Rejection> rejected;
  PackingStrategy strategy = PackingStrategy::kFirstFitDecreasing;

  bool complete() const { return rejected.empty(); }
  double max_utilization() const;
  double total_utilization() const;
};

class Partitioner {
 public:
  explicit Partitioner(
      PackingStrategy strategy = PackingStrategy::kFirstFitDecreasing)
      : strategy_(strategy) {}

  // Packs spec.periodic_tasks (and the per-core server replicas) onto
  // spec.cores bins of capacity 1.0, then routes aperiodic jobs: a job with
  // affinity k goes to core k, the rest round-robin over the serving cores.
  // Deterministic: depends only on the spec contents and the strategy.
  Partition partition(const model::SystemSpec& spec) const;

  // The packing core shared by partition() and the online rebalancer
  // (mp/rebalance.h): places `items` in decreasing-utilization order
  // (stable, so the caller's item order breaks ties) onto bins of capacity
  // 1.0 already carrying `loads`, updating the loads in place. Returns the
  // chosen bin per item in the *original* item order; -1 marks an item that
  // fits nowhere. An item with affinity >= 0 is only ever placed on that
  // bin. A bin can be excluded by handing it a load >= 1.0.
  std::vector<int> pack_items(const std::vector<PartitionItem>& items,
                              std::vector<double>& loads) const;

  PackingStrategy strategy() const { return strategy_; }

 private:
  PackingStrategy strategy_;
};

}  // namespace tsf::mp
