#include "mp/threaded_runtime.h"

#include <barrier>
#include <thread>
#include <utility>

#include "common/diag.h"
#include "mp/channel.h"
#include "mp/overload.h"
#include "mp/rebalance.h"
#include "mp/sched_policy.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace tsf::mp {

using common::Duration;
using common::TimePoint;

// Pins the calling thread to `core` (modulo the host CPU count). Returns
// whether the pin took; on platforms without pthread_setaffinity_np the
// worker simply runs wherever the OS puts it — the backend's correctness
// never depends on placement, only the wall-clock numbers do.
static bool pin_current_thread(std::size_t core) {
#if defined(__linux__)
  const long cpus = sysconf(_SC_NPROCESSORS_ONLN);
  if (cpus <= 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(core % static_cast<std::size_t>(cpus)), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

// The thread-safe completion port: a handler finishing on core `core` (on
// that core's worker, or one of its VM's fiber threads) stages the fire
// into the shared MPSC queue instead of touching the fabric. `next_seq` is
// plain — only this core's world posts through this port, and within one
// world exactly one fiber (or the worker) runs at a time.
struct ThreadedRuntime::StagedPort : exp::CrossCorePort {
  StagedPort(ThreadedRuntime* runtime, std::size_t core)
      : runtime(runtime), core(core) {}
  TSF_WORKER_PHASE
  void fire_remote(const std::string& job, TimePoint now) override {
    runtime->staged_.push(StagedFire{job, core, now, next_seq++});
  }
  ThreadedRuntime* runtime;
  std::size_t core;
  std::uint64_t next_seq = 0;
};

ThreadedRuntime::ThreadedRuntime(std::vector<model::SystemSpec> per_core_specs,
                                 const exp::ExecOptions& options,
                                 ChannelFabric* fabric,
                                 SchedPolicyEngine* engine,
                                 Rebalancer* rebalancer,
                                 OverloadGovernor* governor)
    : fabric_(fabric),
      engine_(engine),
      rebalancer_(rebalancer),
      governor_(governor) {
  TSF_ASSERT(!per_core_specs.empty(), "ThreadedRuntime needs at least one core");
  TSF_ASSERT(fabric_ != nullptr,
             "the threads backend stages fires through the channel fabric");
  TSF_ASSERT(fabric_->cores() == per_core_specs.size(),
             "channel fabric sized for " << fabric_->cores()
                                         << " cores, ThreadedRuntime has "
                                         << per_core_specs.size());
  vms_.reserve(per_core_specs.size());
  systems_.reserve(per_core_specs.size());
  ports_.reserve(per_core_specs.size());
  for (std::size_t c = 0; c < per_core_specs.size(); ++c) {
    const auto& spec = per_core_specs[c];
    vms_.push_back(
        std::make_unique<rtsj::vm::VirtualMachine>(options.kernel));
    ports_.push_back(std::make_unique<StagedPort>(this, c));
    systems_.push_back(std::make_unique<exp::ExecSystem>(
        *vms_.back(), spec, options, ports_.back().get()));
    fabric_->connect(c, systems_.back().get());
    for (const auto& job : spec.aperiodic_jobs) fabric_->bind(c, job.name);
  }
}

ThreadedRuntime::~ThreadedRuntime() = default;

void ThreadedRuntime::attach_trace_sink(std::size_t core,
                                        common::TraceSink* sink) {
  TSF_ASSERT(core < vms_.size(),
             "attach_trace_sink: core " << core << " out of range");
  auto tee = std::make_unique<common::TeeSink>();
  tee->add(&vms_[core]->timeline());
  tee->add(sink);
  vms_[core]->set_trace_sink(tee.get());
  tees_.push_back(std::move(tee));
}

void ThreadedRuntime::record_failure(std::exception_ptr error) {
  const std::lock_guard<std::mutex> lock(error_mutex_);
  if (!first_error_) first_error_ = std::move(error);
}

void ThreadedRuntime::on_boundary() noexcept {
  now_ = common::min(now_ + quantum_, horizon_);

  // Replay the epoch's staged fires in the lock-step oracle's post order.
  // Every producer is parked at the barrier and its pushes happen-before
  // this step, so the drain loop sees the complete batch.
  replay_.clear();
  StagedFire fire;
  while (staged_.pop(&fire)) replay_.push_back(std::move(fire));
  // Producers are still parked, so this is the one safe point to publish
  // the drained nodes back onto the queue's free stack (see mailbox.h).
  staged_.recycle();
  sort_replay_order(&replay_);
  for (auto& f : replay_) fabric_->post_fire(f.from_core, f.job, f.posted);

  if (metrics_ != nullptr) {
    metrics_->add_counter("mp.epochs");
    metrics_->observe(
        "mp.epoch.host_seconds",
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - epoch_begin_)
            .count());
  }
  // Same boundary sequence as MultiVm::run_until: drain, then the policy
  // engine, then the rebalancer — each seeing the queue depths the previous
  // step produced.
  const std::size_t delivered = fabric_->drain(now_);
  if (metrics_ != nullptr) {
    metrics_->add_counter("mp.fabric.deliveries", delivered);
    metrics_->observe("mp.fabric.drain_size", static_cast<double>(delivered));
  }
  if (engine_ != nullptr) engine_->on_epoch(now_);
  if (rebalancer_ != nullptr) rebalancer_->on_epoch(now_);
  if (governor_ != nullptr) governor_->on_epoch(now_);
  epoch_begin_ = std::chrono::steady_clock::now();
}

void ThreadedRuntime::run(TimePoint horizon, Duration quantum) {
  TSF_ASSERT(quantum > Duration::zero(), "epoch quantum must be positive");
  TSF_ASSERT(!ran_, "ThreadedRuntime::run is one-shot");
  ran_ = true;
  horizon_ = horizon;
  quantum_ = quantum;

  const std::size_t cores = vms_.size();
  std::barrier start_barrier(static_cast<std::ptrdiff_t>(cores));
  std::barrier<BoundaryFn> epoch_barrier(static_cast<std::ptrdiff_t>(cores),
                                         BoundaryFn{this});

  const auto run_begin = std::chrono::steady_clock::now();
  epoch_begin_ = run_begin;

  std::vector<std::thread> workers;
  workers.reserve(cores);
  for (std::size_t c = 0; c < cores; ++c) {
    workers.emplace_back([this, c, horizon, quantum, &start_barrier,
                          &epoch_barrier] {
      if (pin_current_thread(c)) {
        pinned_.fetch_add(1, std::memory_order_relaxed);
      }
      // start() on the worker so the world's fiber threads are spawned
      // here and inherit the affinity; the start barrier guarantees every
      // endpoint is armed before any boundary can deliver into it.
      systems_[c]->start();
      start_barrier.arrive_and_wait();
      TimePoint now = TimePoint::origin();
      while (now < horizon) {
        now = common::min(now + quantum, horizon);
        try {
          vms_[c]->run_until(now);
        } catch (...) {
          // Mid-horizon abort: surface the first error, leave the barrier
          // (arrive_and_drop completes the current phase for the others)
          // and let every worker unwind after this phase.
          record_failure(std::current_exception());
          failed_.store(true, std::memory_order_relaxed);
          epoch_barrier.arrive_and_drop();
          return;
        }
        epoch_barrier.arrive_and_wait();
        // The barrier completion step ordered this read after any failing
        // worker's store: all survivors agree on the abort phase.
        if (failed_.load(std::memory_order_relaxed)) return;
      }
    });
  }
  for (auto& w : workers) w.join();
  wall_seconds_ = std::chrono::duration_cast<std::chrono::duration<double>>(
                      std::chrono::steady_clock::now() - run_begin)
                      .count();
  if (metrics_ != nullptr) {
    metrics_->set_gauge("threads.wall_seconds", wall_seconds_);
    metrics_->set_gauge("threads.workers_pinned",
                        static_cast<double>(workers_pinned()));
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

std::vector<model::RunResult> ThreadedRuntime::collect() {
  std::vector<model::RunResult> out;
  out.reserve(systems_.size());
  for (auto& system : systems_) out.push_back(system->collect());
  return out;
}

}  // namespace tsf::mp
