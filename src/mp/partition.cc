#include "mp/partition.h"

#include <algorithm>

#include "common/diag.h"

namespace tsf::mp {

namespace {

// Bins are full at 1.0; the epsilon absorbs the tick-to-double rounding of
// utilizations so an exactly-full core (e.g. 1/6 + 2/6 + 3/6) still fits.
constexpr double kEps = 1e-9;

bool fits(double load, double item) { return load + item <= 1.0 + kEps; }

}  // namespace

const char* to_string(PackingStrategy strategy) {
  switch (strategy) {
    case PackingStrategy::kFirstFitDecreasing:
      return "first-fit-decreasing";
    case PackingStrategy::kWorstFitDecreasing:
      return "worst-fit-decreasing";
    case PackingStrategy::kBestFitDecreasing:
      return "best-fit-decreasing";
  }
  TSF_PANIC("unknown packing strategy");
}

double Partition::max_utilization() const {
  double m = 0.0;
  for (const auto& core : cores) m = std::max(m, core.utilization);
  return m;
}

double Partition::total_utilization() const {
  double t = 0.0;
  for (const auto& core : cores) t += core.utilization;
  return t;
}

std::vector<int> Partitioner::pack_items(
    const std::vector<PartitionItem>& items, std::vector<double>& loads) const {
  std::vector<std::size_t> order(items.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&items](std::size_t a, std::size_t b) {
                     return items[a].utilization > items[b].utilization;
                   });
  const int cores = static_cast<int>(loads.size());
  std::vector<int> placement(items.size(), -1);
  for (const std::size_t i : order) {
    const PartitionItem& item = items[i];
    int chosen = -1;
    if (item.affinity >= 0) {
      if (item.affinity < cores &&
          fits(loads[static_cast<std::size_t>(item.affinity)],
               item.utilization)) {
        chosen = item.affinity;
      }
    } else {
      switch (strategy_) {
        case PackingStrategy::kFirstFitDecreasing:
          for (int c = 0; c < cores; ++c) {
            if (fits(loads[c], item.utilization)) {
              chosen = c;
              break;
            }
          }
          break;
        case PackingStrategy::kWorstFitDecreasing:
          for (int c = 0; c < cores; ++c) {
            if (!fits(loads[c], item.utilization)) continue;
            if (chosen < 0 || loads[c] < loads[chosen]) chosen = c;
          }
          break;
        case PackingStrategy::kBestFitDecreasing:
          for (int c = 0; c < cores; ++c) {
            if (!fits(loads[c], item.utilization)) continue;
            if (chosen < 0 || loads[c] > loads[chosen]) chosen = c;
          }
          break;
      }
    }
    if (chosen < 0) continue;
    placement[i] = chosen;
    loads[static_cast<std::size_t>(chosen)] += item.utilization;
  }
  return placement;
}

Partition Partitioner::partition(const model::SystemSpec& spec) const {
  Partition out;
  out.strategy = strategy_;
  const int cores = std::max(1, spec.cores);
  out.cores.resize(static_cast<std::size_t>(cores));

  // Server replicas first: they are pinned, one per core, and every bin
  // must carry the replica's utilization before any task is placed.
  const bool has_server = spec.server.policy != model::ServerPolicy::kNone;
  const double server_u = has_server ? spec.server.utilization() : 0.0;
  if (has_server) {
    for (int c = 0; c < cores; ++c) {
      PartitionItem item;
      item.kind = PartitionItem::Kind::kServer;
      item.index = static_cast<std::size_t>(c);
      item.name = "server/c" + std::to_string(c);
      item.utilization = server_u;
      item.affinity = c;
      auto& bin = out.cores[static_cast<std::size_t>(c)];
      if (!fits(bin.utilization, server_u)) {
        out.rejected.push_back({item, "server utilization exceeds one core"});
        continue;
      }
      bin.has_server = true;
      bin.utilization += server_u;
    }
  }

  // Pinned tasks next, in spec order: affinity is a hard constraint, so a
  // pinned task competes for its core before any unpinned task is placed.
  std::vector<PartitionItem> unpinned;
  for (std::size_t i = 0; i < spec.periodic_tasks.size(); ++i) {
    const auto& t = spec.periodic_tasks[i];
    PartitionItem item;
    item.kind = PartitionItem::Kind::kTask;
    item.index = i;
    item.name = t.name;
    item.utilization = t.utilization();
    item.affinity = t.affinity;
    if (t.affinity < 0) {
      unpinned.push_back(std::move(item));
      continue;
    }
    if (t.affinity >= cores) {
      out.rejected.push_back({item, "affinity beyond the last core"});
      continue;
    }
    auto& bin = out.cores[static_cast<std::size_t>(t.affinity)];
    if (!fits(bin.utilization, item.utilization)) {
      out.rejected.push_back({item, "pinned core has no capacity left"});
      continue;
    }
    bin.tasks.push_back(i);
    bin.utilization += item.utilization;
  }

  // Unpinned tasks: the shared packing core (decreasing utilization,
  // stable — spec order breaks ties, which keeps the assignment
  // deterministic across runs).
  std::vector<double> loads;
  loads.reserve(out.cores.size());
  for (const auto& core : out.cores) loads.push_back(core.utilization);
  const std::vector<int> placement = pack_items(unpinned, loads);
  std::vector<std::size_t> rejected_items;
  for (std::size_t i = 0; i < unpinned.size(); ++i) {
    if (placement[i] < 0) {
      rejected_items.push_back(i);
      continue;
    }
    out.cores[static_cast<std::size_t>(placement[i])].tasks.push_back(
        unpinned[i].index);
  }
  // Rejections are reported in packing (decreasing-utilization) order, as
  // they always were — pack_items returns placements in input order, so
  // the packing order is recovered here.
  std::stable_sort(rejected_items.begin(), rejected_items.end(),
                   [&unpinned](std::size_t a, std::size_t b) {
                     return unpinned[a].utilization > unpinned[b].utilization;
                   });
  for (const std::size_t i : rejected_items) {
    out.rejected.push_back({unpinned[i], "does not fit on any core"});
  }
  for (std::size_t c = 0; c < out.cores.size(); ++c) {
    out.cores[c].utilization = loads[c];
  }

  // Keep each core's tasks in spec order: packing order is a heuristic
  // detail, but downstream lowering should see a stable, readable order.
  for (auto& core : out.cores) std::sort(core.tasks.begin(), core.tasks.end());

  // Route aperiodic jobs. Pinned jobs go to their core regardless of
  // whether a server lives there (an unserved job is a result, not an
  // error); unpinned jobs round-robin over the cores that can serve them —
  // walked in job-name order, not declaration order, so the placement (and
  // with it every downstream run) is invariant under reordering the spec's
  // [job] sections. The stored per-core lists stay in spec-index order.
  std::vector<int> serving;
  for (int c = 0; c < cores; ++c) {
    if (out.cores[static_cast<std::size_t>(c)].has_server) serving.push_back(c);
  }
  std::vector<std::size_t> roaming;
  for (std::size_t j = 0; j < spec.aperiodic_jobs.size(); ++j) {
    const int affinity = spec.aperiodic_jobs[j].affinity;
    if (affinity >= 0 && affinity < cores) {
      out.cores[static_cast<std::size_t>(affinity)].jobs.push_back(j);
    } else {
      roaming.push_back(j);
    }
  }
  std::sort(roaming.begin(), roaming.end(),
            [&spec](std::size_t a, std::size_t b) {
              return spec.aperiodic_jobs[a].name < spec.aperiodic_jobs[b].name;
            });
  std::size_t rr = 0;
  for (std::size_t j : roaming) {
    const int target =
        serving.empty()
            ? static_cast<int>(rr % static_cast<std::size_t>(cores))
            : serving[rr % serving.size()];
    ++rr;
    out.cores[static_cast<std::size_t>(target)].jobs.push_back(j);
  }
  for (auto& core : out.cores) std::sort(core.jobs.begin(), core.jobs.end());

  return out;
}

}  // namespace tsf::mp
