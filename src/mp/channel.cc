#include "mp/channel.h"

#include <algorithm>

#include "common/diag.h"

namespace tsf::mp {

using common::TimePoint;

std::vector<Mailbox::Message> Mailbox::take_due(TimePoint boundary) {
  // Scan the whole queue, not just a due prefix: post order is core order
  // within an epoch, so with a non-zero channel latency a message posted
  // later in host order can fall due *earlier* in virtual time (core 1
  // fires at vt 5.2 after core 0 fired at vt 5.7). Every due message must
  // leave at this boundary regardless of its queue position.
  std::vector<Message> due;
  std::deque<Message> keep;
  for (auto& m : in_flight_) {
    if (m.due <= boundary) {
      due.push_back(std::move(m));
    } else {
      keep.push_back(std::move(m));
    }
  }
  in_flight_ = std::move(keep);
  return due;
}

struct ChannelFabric::PortImpl : exp::CrossCorePort {
  PortImpl(ChannelFabric* fabric, std::size_t core)
      : fabric(fabric), core(core) {}
  // Worker-phase by contract (handlers fire mid-epoch), yet it reaches the
  // barrier-only post_fire directly: under the lock-step backend exactly
  // one VM runs at a time, so mid-epoch fabric writes are unracy. The
  // threads backend swaps this port for ThreadedRuntime::StagedPort. This
  // is the reviewed phase-order waiver in tools/tsf_lint.allow.
  TSF_WORKER_PHASE
  void fire_remote(const std::string& job, TimePoint now) override {
    fabric->post_fire(core, job, now);
  }
  ChannelFabric* fabric;
  std::size_t core;
};

ChannelFabric::ChannelFabric(std::size_t cores, ChannelConfig config)
    : config_(config), mailboxes_(cores), endpoints_(cores, nullptr) {
  TSF_ASSERT(cores > 0, "channel fabric needs at least one core");
  ports_.reserve(cores);
  for (std::size_t c = 0; c < cores; ++c) {
    ports_.push_back(std::make_unique<PortImpl>(this, c));
  }
}

ChannelFabric::~ChannelFabric() = default;

exp::CrossCorePort* ChannelFabric::port(std::size_t core) {
  TSF_ASSERT(core < ports_.size(), "port for core beyond the fabric");
  return ports_[core].get();
}

void ChannelFabric::connect(std::size_t core, exp::CoreEndpoint* endpoint) {
  TSF_ASSERT(core < endpoints_.size(), "endpoint for core beyond the fabric");
  endpoints_[core] = endpoint;
}

exp::CoreEndpoint* ChannelFabric::endpoint(std::size_t core) const {
  TSF_ASSERT(core < endpoints_.size(), "endpoint for core beyond the fabric");
  return endpoints_[core];
}

void ChannelFabric::bind(std::size_t core, const std::string& job) {
  TSF_ASSERT(core < mailboxes_.size(), "binding to a core beyond the fabric");
  const auto [it, inserted] = routes_.emplace(job, core);
  TSF_ASSERT(inserted || it->second == core,
             "job " << job << " bound to two cores");
  // Fires that arrived while the name was only expected now have a home;
  // they are delivered at the first boundary >= their (already computed)
  // due time, exactly as if they had been routable when posted.
  auto waiting = deferred_.find(job);
  if (waiting != deferred_.end()) {
    for (auto& m : waiting->second) mailboxes_[core].push(std::move(m));
    deferred_.erase(waiting);
  }
}

void ChannelFabric::expect(const std::string& job) { expected_.insert(job); }

void ChannelFabric::add_migratable(exp::MigratedJob job, TimePoint release) {
  expect(job.name);
  PendingMigration m;
  m.job = std::move(job);
  m.release = release;
  m.due = due_after(release);
  migrations_.push_back(std::move(m));
}

TimePoint ChannelFabric::due_after(TimePoint posted) const {
  return posted + config_.latency;
}

void ChannelFabric::post_fire(std::size_t from_core, const std::string& job,
                              TimePoint posted) {
  const auto route = routes_.find(job);
  if (route == routes_.end() && expected_.count(job) == 0) {
    // No core hosts this event and none ever will (e.g. its job was
    // rejected by the partitioner): a terminal failed delivery, visible in
    // the report.
    exp::ChannelDelivery d;
    d.kind = exp::ChannelDelivery::Kind::kFire;
    d.job = job;
    d.from_core = from_core;
    d.posted = posted;
    deliveries_.push_back(std::move(d));
    return;
  }
  Mailbox::Message m;
  m.job = job;
  m.from_core = from_core;
  m.posted = posted;
  m.due = due_after(posted);
  m.seq = next_seq_++;
  if (route == routes_.end()) {
    // Expected but not yet bound (a pool job before its dispatch, a
    // migratable before its delivery): parked until bind() flushes it.
    deferred_[job].push_back(std::move(m));
  } else {
    mailboxes_[route->second].push(std::move(m));
  }
}

std::size_t ChannelFabric::drain(TimePoint boundary) {
  std::size_t delivered = 0;

  // Remote fires: per-core mailboxes in core order, post order within one.
  for (std::size_t core = 0; core < mailboxes_.size(); ++core) {
    for (auto& m : mailboxes_[core].take_due(boundary)) {
      exp::ChannelDelivery d;
      d.kind = exp::ChannelDelivery::Kind::kFire;
      d.job = std::move(m.job);
      d.from_core = m.from_core;
      d.to_core = core;
      d.posted = m.posted;
      d.delivered = boundary;
      d.ok = endpoints_[core] != nullptr && endpoints_[core]->deliver_fire(d.job);
      delivered += d.ok ? 1 : 0;
      deliveries_.push_back(std::move(d));
    }
  }

  // Migrations: registration order; the load signal is sampled at this
  // boundary, *after* the fires above (a fire delivered now is real queued
  // work the balancer should see).
  for (auto& m : migrations_) {
    if (m.delivered || m.due > boundary) continue;
    const std::size_t chosen = least_loaded_serving_core();
    m.delivered = true;
    exp::ChannelDelivery d;
    d.kind = exp::ChannelDelivery::Kind::kMigrate;
    d.job = m.job.name;
    d.posted = m.release;
    if (chosen == exp::ChannelDelivery::kNoCore) {
      // No serving core anywhere: terminal failure.
      deliveries_.push_back(std::move(d));
      continue;
    }
    endpoints_[chosen]->deliver_migrated(m.job);
    // The migrated job now has a home: later fires can route to it — and
    // bind() flushes any fire that was parked while the name was merely
    // expected.
    bind(chosen, m.job.name);
    d.to_core = chosen;
    d.delivered = boundary;
    d.ok = true;
    ++delivered;
    deliveries_.push_back(std::move(d));
  }
  return delivered;
}

std::size_t ChannelFabric::least_loaded_serving_core() const {
  std::size_t chosen = exp::ChannelDelivery::kNoCore;
  std::size_t best_depth = 0;
  for (std::size_t core = 0; core < endpoints_.size(); ++core) {
    if (endpoints_[core] == nullptr || !endpoints_[core]->serves_aperiodics())
      continue;
    const std::size_t depth = endpoints_[core]->queue_depth();
    if (chosen == exp::ChannelDelivery::kNoCore || depth < best_depth) {
      chosen = core;
      best_depth = depth;
    }
  }
  return chosen;
}

std::size_t ChannelFabric::in_flight() const {
  std::size_t n = 0;
  for (const auto& mailbox : mailboxes_) n += mailbox.size();
  for (const auto& [job, waiting] : deferred_) n += waiting.size();
  for (const auto& m : migrations_) n += m.delivered ? 0 : 1;
  return n;
}

}  // namespace tsf::mp
