// MultiVm — the partitioned multi-core execution substrate.
//
// Partitioned scheduling has no cross-core preemption, so a multi-core
// machine is modelled as one deterministic rtsj::vm::VirtualMachine per
// core. MultiVm advances all cores in lock-step virtual time: every core is
// driven to the same sequence of epoch boundaries (multiples of `quantum`),
// which keeps multi-core runs bit-reproducible — the merged trace depends
// only on the specs, never on host scheduling — and gives future
// cross-core-communication PRs a synchronization point that is already
// deterministic.
//
// Each core hosts one exp::ExecSystem (the same lowering run_exec uses), so
// a MultiVm run of N single-core specs is observationally identical to N
// independent run_exec calls — asserted by tests/mp/multi_vm_test.cc.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/metrics_registry.h"
#include "common/time.h"
#include "common/trace_sink.h"
#include "exp/exec_runner.h"
#include "model/run_result.h"
#include "model/spec.h"
#include "rtsj/vm/vm.h"

namespace tsf::mp {

class ChannelFabric;
class OverloadGovernor;
class Rebalancer;
class SchedPolicyEngine;

class MultiVm {
 public:
  // One VM + ExecSystem per spec. Every spec needs a finite horizon.
  //
  // With a fabric, each core's ExecSystem posts outbound cross-core traffic
  // through fabric->port(core), every job in the per-core specs is bound
  // into the fabric's routing table, and run_until drains the fabric's
  // mailboxes at every epoch boundary (while all VMs are paused there) —
  // the delivery instant of remote fires and migrations. The fabric must
  // outlive the MultiVm.
  //
  // With an engine (which requires a fabric), the scheduling policy's
  // boundary work — shared-pool dispatch under global, the steal pass under
  // semi-partitioned — runs right after every fabric drain, at the same
  // deterministic pause. The engine must outlive the MultiVm too.
  //
  // With a rebalancer (which also requires a fabric), the online
  // load-rebalancing pass (mp/rebalance.h) runs after the drain and the
  // policy engine, so it sees the queue depths including this boundary's
  // deliveries. It must outlive the MultiVm.
  //
  // With a governor (which also requires a fabric), the overload shed pass
  // (mp/overload.h) runs last of all — after the rebalancer, so shedding is
  // the final resort once migration had its chance to place the backlog.
  explicit MultiVm(std::vector<model::SystemSpec> per_core_specs,
                   const exp::ExecOptions& options,
                   ChannelFabric* fabric = nullptr,
                   SchedPolicyEngine* engine = nullptr,
                   Rebalancer* rebalancer = nullptr,
                   OverloadGovernor* governor = nullptr);
  ~MultiVm();
  MultiVm(const MultiVm&) = delete;
  MultiVm& operator=(const MultiVm&) = delete;

  std::size_t cores() const { return vms_.size(); }
  rtsj::vm::VirtualMachine& vm(std::size_t core) { return *vms_[core]; }

  // Streams core `core`'s trace into `sink` as well as its in-memory
  // timeline (the VM's emission is replaced with an owned tee over both).
  // Call before start(); the sink must outlive the MultiVm. One external
  // sink per core — a later call for the same core supersedes the earlier.
  void attach_trace_sink(std::size_t core, common::TraceSink* sink);

  // Surfaces runtime counters during run_until: "mp.epochs",
  // "mp.epoch.host_seconds", and with a fabric "mp.fabric.deliveries" /
  // "mp.fabric.drain_size". The registry must outlive the run.
  void set_metrics(common::MetricsRegistry* metrics) { metrics_ = metrics; }

  // Arms every core's world. Call once, before run_until.
  void start();

  // Advances every core to `horizon` in lock-step epochs of `quantum`
  // (the last epoch is clipped). Resumable like VirtualMachine::run_until.
  void run_until(common::TimePoint horizon,
                 common::Duration quantum = common::Duration::time_units(1));

  // Per-core results, in core order. Destructive; call once after the run.
  std::vector<model::RunResult> collect();

 private:
  // Destruction order matters: systems_ (fibers, timers) must go before
  // the VMs they run on, so vms_ is declared first.
  std::vector<std::unique_ptr<rtsj::vm::VirtualMachine>> vms_;
  std::vector<std::unique_ptr<exp::ExecSystem>> systems_;
  ChannelFabric* fabric_ = nullptr;
  SchedPolicyEngine* engine_ = nullptr;
  Rebalancer* rebalancer_ = nullptr;
  OverloadGovernor* governor_ = nullptr;
  common::MetricsRegistry* metrics_ = nullptr;
  std::vector<std::unique_ptr<common::TeeSink>> tees_;
  common::TimePoint now_ = common::TimePoint::origin();
};

}  // namespace tsf::mp
