#include "mp/multi_vm.h"

#include <chrono>

#include "common/diag.h"
#include "mp/channel.h"
#include "mp/overload.h"
#include "mp/rebalance.h"
#include "mp/sched_policy.h"

namespace tsf::mp {

using common::Duration;
using common::TimePoint;

MultiVm::MultiVm(std::vector<model::SystemSpec> per_core_specs,
                 const exp::ExecOptions& options, ChannelFabric* fabric,
                 SchedPolicyEngine* engine, Rebalancer* rebalancer,
                 OverloadGovernor* governor)
    : fabric_(fabric),
      engine_(engine),
      rebalancer_(rebalancer),
      governor_(governor) {
  TSF_ASSERT(!per_core_specs.empty(), "MultiVm needs at least one core");
  TSF_ASSERT(engine_ == nullptr || fabric_ != nullptr,
             "a scheduling-policy engine needs the channel fabric");
  TSF_ASSERT(rebalancer_ == nullptr || fabric_ != nullptr,
             "a rebalancer needs the channel fabric");
  TSF_ASSERT(governor_ == nullptr || fabric_ != nullptr,
             "an overload governor needs the channel fabric");
  TSF_ASSERT(fabric_ == nullptr || fabric_->cores() == per_core_specs.size(),
             "channel fabric sized for " << (fabric ? fabric->cores() : 0)
                                         << " cores, MultiVm has "
                                         << per_core_specs.size());
  vms_.reserve(per_core_specs.size());
  systems_.reserve(per_core_specs.size());
  for (std::size_t c = 0; c < per_core_specs.size(); ++c) {
    const auto& spec = per_core_specs[c];
    vms_.push_back(
        std::make_unique<rtsj::vm::VirtualMachine>(options.kernel));
    systems_.push_back(std::make_unique<exp::ExecSystem>(
        *vms_.back(), spec, options,
        fabric_ != nullptr ? fabric_->port(c) : nullptr));
    if (fabric_ != nullptr) {
      fabric_->connect(c, systems_.back().get());
      for (const auto& job : spec.aperiodic_jobs) fabric_->bind(c, job.name);
    }
  }
}

MultiVm::~MultiVm() = default;

void MultiVm::attach_trace_sink(std::size_t core, common::TraceSink* sink) {
  TSF_ASSERT(core < vms_.size(),
             "attach_trace_sink: core " << core << " out of range");
  auto tee = std::make_unique<common::TeeSink>();
  tee->add(&vms_[core]->timeline());
  tee->add(sink);
  vms_[core]->set_trace_sink(tee.get());
  tees_.push_back(std::move(tee));
}

void MultiVm::start() {
  for (auto& system : systems_) system->start();
}

void MultiVm::run_until(TimePoint horizon, Duration quantum) {
  TSF_ASSERT(quantum > Duration::zero(), "lock-step quantum must be positive");
  while (now_ < horizon) {
    now_ = common::min(now_ + quantum, horizon);
    const auto epoch_begin = std::chrono::steady_clock::now();
    for (auto& vm : vms_) vm->run_until(now_);
    if (metrics_ != nullptr) {
      metrics_->add_counter("mp.epochs");
      metrics_->observe(
          "mp.epoch.host_seconds",
          std::chrono::duration_cast<std::chrono::duration<double>>(
              std::chrono::steady_clock::now() - epoch_begin)
              .count());
    }
    // Every core is paused at now_: the deterministic instant at which
    // cross-core messages posted in earlier epochs become visible. Effects
    // (event fires, releases, server wake-ups) are enqueued now and
    // processed when the VMs resume into the next epoch. The scheduling
    // policy runs after the drain so pool dispatch and steal decisions see
    // the queue depths including this boundary's channel deliveries.
    if (fabric_ != nullptr) {
      const std::size_t delivered = fabric_->drain(now_);
      if (metrics_ != nullptr) {
        metrics_->add_counter("mp.fabric.deliveries", delivered);
        metrics_->observe("mp.fabric.drain_size",
                          static_cast<double>(delivered));
      }
    }
    if (engine_ != nullptr) engine_->on_epoch(now_);
    // The rebalancer runs after the policy engine: its load measurement and
    // migration decisions see the queue depths *including* this boundary's
    // channel deliveries and policy moves.
    if (rebalancer_ != nullptr) rebalancer_->on_epoch(now_);
    // The overload governor goes last of all: shedding is the final resort,
    // taken only on backlog migration could not (or chose not to) place.
    if (governor_ != nullptr) governor_->on_epoch(now_);
  }
}

std::vector<model::RunResult> MultiVm::collect() {
  std::vector<model::RunResult> out;
  out.reserve(systems_.size());
  for (auto& system : systems_) out.push_back(system->collect());
  return out;
}

}  // namespace tsf::mp
