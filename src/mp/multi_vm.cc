#include "mp/multi_vm.h"

#include "common/diag.h"

namespace tsf::mp {

using common::Duration;
using common::TimePoint;

MultiVm::MultiVm(std::vector<model::SystemSpec> per_core_specs,
                 const exp::ExecOptions& options) {
  TSF_ASSERT(!per_core_specs.empty(), "MultiVm needs at least one core");
  vms_.reserve(per_core_specs.size());
  systems_.reserve(per_core_specs.size());
  for (const auto& spec : per_core_specs) {
    vms_.push_back(
        std::make_unique<rtsj::vm::VirtualMachine>(options.kernel));
    systems_.push_back(
        std::make_unique<exp::ExecSystem>(*vms_.back(), spec, options));
  }
}

MultiVm::~MultiVm() = default;

void MultiVm::start() {
  for (auto& system : systems_) system->start();
}

void MultiVm::run_until(TimePoint horizon, Duration quantum) {
  TSF_ASSERT(quantum > Duration::zero(), "lock-step quantum must be positive");
  while (now_ < horizon) {
    now_ = common::min(now_ + quantum, horizon);
    for (auto& vm : vms_) vm->run_until(now_);
  }
}

std::vector<model::RunResult> MultiVm::collect() {
  std::vector<model::RunResult> out;
  out.reserve(systems_.size());
  for (auto& system : systems_) out.push_back(system->collect());
  return out;
}

}  // namespace tsf::mp
