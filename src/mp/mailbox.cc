#include "mp/mailbox.h"

#include <algorithm>

namespace tsf::mp {

void sort_replay_order(std::vector<StagedFire>* batch) {
  // Stable order on the (from_core, seq) key. The key is already unique per
  // element (each producer's seq is strictly increasing), so std::sort
  // would do, but being explicit costs nothing and guards against a future
  // producer reusing sequence numbers.
  std::stable_sort(batch->begin(), batch->end(),
                   [](const StagedFire& a, const StagedFire& b) {
                     if (a.from_core != b.from_core)
                       return a.from_core < b.from_core;
                     return a.seq < b.seq;
                   });
}

}  // namespace tsf::mp
