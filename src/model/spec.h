// Policy-neutral system specifications.
//
// A SystemSpec describes a workload: periodic tasks, one task server, and a
// set of aperiodic jobs with release times. The same spec is lowered to
// either engine — the theoretical discrete-event simulator (tsf::sim) or the
// RTSJ-style virtual machine (tsf::rtsj + tsf::core) — which is what makes
// the paper's simulation-vs-execution comparison meaningful: both sides run
// exactly the same workload.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"

namespace tsf::model {

using common::Duration;
using common::TimePoint;

// Aperiodic service policies (paper §2).
enum class ServerPolicy {
  kNone,        // no aperiodic service at all
  kBackground,  // serve aperiodics at the lowest priority (§2's baseline)
  kPolling,     // Polling Server (§2.1, §4.1)
  kDeferrable,  // Deferrable Server (§2.2, §4.2)
  kSporadic,    // Sporadic Server (cited in §2; extension)
};

// Pending-queue disciplines for the implemented servers (§4.1, §7).
enum class QueueDiscipline {
  kStrictFifo,    // serve strictly in FIFO order; head blocks the queue
  kFifoFirstFit,  // paper's chooseNextEvent: first event that fits capacity
  kListOfLists,   // §7's structure: per-instance buckets, O(1) prediction
};

// Scheduling policies of the RTSS simulator (§5).
enum class SchedulingPolicy {
  kFixedPriority,
  kEdf,
  kDOver,
};

const char* to_string(ServerPolicy p);
const char* to_string(QueueDiscipline q);
const char* to_string(SchedulingPolicy s);

struct PeriodicTaskSpec {
  std::string name;
  Duration period;
  Duration cost;
  // Relative deadline; zero means "deadline == period".
  Duration deadline = Duration::zero();
  TimePoint start = TimePoint::origin();
  // Fixed priority; larger values are higher priority.
  int priority = 0;
  // Core pinning for the partitioned multiprocessor runtime (tsf::mp):
  // -1 lets the partitioner place the task, k >= 0 pins it to core k.
  int affinity = -1;

  Duration effective_deadline() const {
    return deadline.is_zero() ? period : deadline;
  }
  double utilization() const {
    return period.is_zero() ? 0.0 : cost.to_tu() / period.to_tu();
  }
};

struct AperiodicJobSpec {
  std::string name;
  TimePoint release;
  // True execution demand of the handler body.
  Duration cost;
  // The cost *declared* to the server (admission uses this; the paper's
  // scenario 3 deliberately under-declares). Zero means "same as cost".
  Duration declared_cost = Duration::zero();
  // Optional relative deadline, used by the EDF / D-OVER simulator policies
  // and by online admission; zero means "none".
  Duration relative_deadline = Duration::zero();
  // Value for D-OVER's overload decisions; zero means "value == cost".
  double value = 0.0;
  // Core routing for the partitioned runtime: -1 lets the partitioner
  // spread jobs round-robin over the serving cores, k >= 0 pins to core k.
  int affinity = -1;
  // Cross-core channels (tsf::mp, multi-core exec runs only):
  //
  // When non-empty, this job's handler fires the named job's event on
  // completion. If the target lives on another core the fire travels through
  // the epoch-synchronized channel fabric and is delivered at the first
  // epoch boundary >= completion + channel_latency; on a uniprocessor run
  // (or same-core target without a fabric) it fires immediately.
  std::string fires;
  // A triggered job has no release timer: it is released only when another
  // job fires it (its outcome's release is the delivery instant).
  bool triggered = false;
  // A migratable job is not routed to a fixed core by the partitioner;
  // instead the channel fabric delivers it to the least-loaded serving core
  // (smallest pending queue, ties to the lowest core id) at the first epoch
  // boundary >= release + channel_latency.
  bool migrate = false;

  Duration effective_declared_cost() const {
    return declared_cost.is_zero() ? cost : declared_cost;
  }
  double effective_value() const {
    return value == 0.0 ? cost.to_tu() : value;
  }
};

struct ServerSpec {
  ServerPolicy policy = ServerPolicy::kPolling;
  Duration capacity = Duration::zero();
  Duration period = Duration::zero();
  int priority = 0;
  QueueDiscipline queue = QueueDiscipline::kFifoFirstFit;
  // Tightens the Deferrable Server's boundary-spanning budget rule (§4.2):
  // when true, an event may only span a replenishment if the time left until
  // the replenishment fits in the remaining capacity.
  bool strict_capacity = false;
  // §7's interruption-avoidance margin: dispatch only when declared cost +
  // margin fits the budget (execution engine only; the theoretical servers
  // never interrupt).
  Duration admission_margin = Duration::zero();

  double utilization() const {
    return period.is_zero() ? 0.0 : capacity.to_tu() / period.to_tu();
  }
};

struct SystemSpec {
  std::string name;
  std::vector<PeriodicTaskSpec> periodic_tasks;
  ServerSpec server;
  std::vector<AperiodicJobSpec> aperiodic_jobs;
  TimePoint horizon = TimePoint::never();
  // Number of processor cores. 1 runs the classic uniprocessor engines;
  // > 1 enables the partitioned runtime (tsf::mp): tasks are bin-packed
  // onto cores and the server (when present) is replicated on every core.
  int cores = 1;
  // Minimum in-flight time of a cross-core message before it becomes
  // eligible for delivery; actual delivery happens at the first epoch
  // boundary at or after posted + channel_latency (the quantization delay
  // on top of this is what bench/cross_core.cc measures).
  Duration channel_latency = Duration::zero();

  double periodic_utilization() const {
    double u = 0.0;
    for (const auto& t : periodic_tasks) u += t.cost.to_tu() / t.period.to_tu();
    return u;
  }
  // Whether any job uses the channel fabric (remote fires, triggered
  // releases or migration) — the features the simulator engine ignores.
  bool uses_channels() const {
    for (const auto& j : aperiodic_jobs) {
      if (j.triggered || j.migrate || !j.fires.empty()) return true;
    }
    return false;
  }
};

// The fate of one aperiodic job in one run (either engine).
struct JobOutcome {
  std::string name;
  TimePoint release;
  Duration cost = Duration::zero();
  bool served = false;       // completed before the horizon
  bool interrupted = false;  // abandoned (AIE / capacity overrun); exec only
  bool shed = false;         // dropped by an overload policy; never dispatched
  TimePoint start = TimePoint::never();
  TimePoint completion = TimePoint::never();

  Duration response() const {
    return served ? completion - release : Duration::infinite();
  }
};

// The fate of one periodic job (used by tests and the analysis cross-checks).
struct PeriodicOutcome {
  std::string task;
  TimePoint release;
  TimePoint completion = TimePoint::never();
  bool deadline_missed = false;
};

}  // namespace tsf::model
