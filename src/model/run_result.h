// The result of running one SystemSpec on one engine.
#pragma once

#include <cstdint>
#include <vector>

#include "common/trace.h"
#include "model/spec.h"

namespace tsf::model {

struct RunResult {
  std::vector<JobOutcome> jobs;
  std::vector<PeriodicOutcome> periodic_jobs;
  common::Timeline timeline;
  // Engine bookkeeping, for the micro benches and sanity tests.
  std::uint64_t server_activations = 0;
  std::uint64_t server_dispatches = 0;
};

}  // namespace tsf::model
