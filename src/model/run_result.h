// The result of running one SystemSpec on one engine.
#pragma once

#include <cstdint>
#include <vector>

#include "common/trace.h"
#include "model/spec.h"

namespace tsf::model {

// One overload decision that removed (or took over) pending work — the
// exactly-once ledger the invariant checker reconciles against the kShed
// trace records. Recorded core-locally by the task server, folded into the
// cross-core ChannelDelivery ledger by mp::merge_results.
struct ShedEvent {
  enum class Kind {
    kShed,      // job dropped, will never be dispatched
    kTakeover,  // D-over LST takeover: job admitted by demoting the
                // privileged set
  };
  Kind kind = Kind::kShed;
  std::string job;
  TimePoint release;
  TimePoint at;
  std::string reason;  // "overload" | "lst" | "missed-lst" | "takeover"
  std::size_t core = 0;  // filled in by merge_results
};

struct RunResult {
  std::vector<JobOutcome> jobs;
  std::vector<PeriodicOutcome> periodic_jobs;
  common::Timeline timeline;
  std::vector<ShedEvent> shed_events;
  // Engine bookkeeping, for the micro benches and sanity tests.
  std::uint64_t server_activations = 0;
  std::uint64_t server_dispatches = 0;
};

}  // namespace tsf::model
