#include "model/spec.h"

namespace tsf::model {

const char* to_string(ServerPolicy p) {
  switch (p) {
    case ServerPolicy::kNone:
      return "none";
    case ServerPolicy::kBackground:
      return "background";
    case ServerPolicy::kPolling:
      return "polling";
    case ServerPolicy::kDeferrable:
      return "deferrable";
    case ServerPolicy::kSporadic:
      return "sporadic";
  }
  return "?";
}

const char* to_string(QueueDiscipline q) {
  switch (q) {
    case QueueDiscipline::kStrictFifo:
      return "strict-fifo";
    case QueueDiscipline::kFifoFirstFit:
      return "fifo-first-fit";
    case QueueDiscipline::kListOfLists:
      return "list-of-lists";
  }
  return "?";
}

const char* to_string(SchedulingPolicy s) {
  switch (s) {
    case SchedulingPolicy::kFixedPriority:
      return "fixed-priority";
    case SchedulingPolicy::kEdf:
      return "edf";
    case SchedulingPolicy::kDOver:
      return "d-over";
  }
  return "?";
}

}  // namespace tsf::model
