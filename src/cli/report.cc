#include "cli/report.h"

#include <fstream>
#include <sstream>

#include "common/table.h"
#include "common/trace.h"
#include "exp/metrics.h"
#include "sim/simulator.h"

namespace tsf::cli {

namespace {

using common::Duration;

void render_run(std::ostream& os, const CliConfig& config,
                const std::string& label, const model::RunResult& result) {
  os << "--- " << label << " ---\n";
  common::TextTable jobs;
  jobs.add_row({"job", "release", "cost", "outcome", "completion",
                "response"});
  for (const auto& job : result.jobs) {
    jobs.add_row(
        {job.name, common::to_string(job.release),
         common::to_string(job.cost),
         job.served ? "served" : (job.interrupted ? "interrupted" : "unserved"),
         job.served ? common::to_string(job.completion) : "-",
         job.served ? common::to_string(job.response()) : "-"});
  }
  os << jobs.to_string();

  const auto metrics = exp::compute_run_metrics(result);
  os << "mean response " << common::fmt_fixed(metrics.mean_response_tu, 2)
     << "tu, served " << metrics.served << "/" << metrics.released
     << ", interrupted " << metrics.interrupted << "\n";

  std::size_t misses = 0;
  for (const auto& p : result.periodic_jobs) misses += p.deadline_missed;
  if (!result.periodic_jobs.empty()) {
    os << "periodic jobs: " << result.periodic_jobs.size()
       << " completions, " << misses << " deadline misses\n";
  }

  if (config.gantt) {
    std::vector<std::string> rows;
    for (const auto& job : config.spec.aperiodic_jobs) rows.push_back(job.name);
    for (const auto& task : config.spec.periodic_tasks) {
      rows.push_back(task.name);
    }
    common::GanttOptions options;
    options.end = config.spec.horizon;
    const auto span = config.spec.horizon - common::TimePoint::origin();
    options.cell = common::max(Duration::ticks(span.count() / 72),
                               Duration::ticks(250));
    os << render_gantt(result.timeline, rows, options);
  }
  os << '\n';
}

}  // namespace

std::string run_and_report(const CliConfig& config) {
  std::ostringstream os;
  os << "system: " << config.spec.periodic_tasks.size() << " periodic task(s), "
     << config.spec.aperiodic_jobs.size() << " aperiodic job(s), "
     << model::to_string(config.spec.server.policy) << " server "
     << common::to_string(config.spec.server.capacity) << "/"
     << common::to_string(config.spec.server.period) << ", horizon "
     << common::to_string(config.spec.horizon) << "\n\n";

  if (config.mode == RunMode::kSim || config.mode == RunMode::kBoth) {
    render_run(os, config, "simulation (theoretical policies)",
               sim::simulate(config.spec));
  }
  if (config.mode == RunMode::kExec || config.mode == RunMode::kBoth) {
    const auto result = exp::run_exec(config.spec, config.exec_options);
    render_run(os, config, "execution (RTSJ-style runtime)", result);
    if (!config.vcd_path.empty()) {
      std::vector<std::string> rows;
      for (const auto& job : config.spec.aperiodic_jobs) {
        rows.push_back(job.name);
      }
      for (const auto& task : config.spec.periodic_tasks) {
        rows.push_back(task.name);
      }
      std::ofstream vcd(config.vcd_path);
      if (vcd) {
        vcd << common::to_vcd(result.timeline, rows);
        os << "execution trace written to " << config.vcd_path << " (VCD)\n";
      } else {
        os << "error: cannot write " << config.vcd_path << '\n';
      }
    }
  }
  return os.str();
}

}  // namespace tsf::cli
