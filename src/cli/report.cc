#include "cli/report.h"

#include <fstream>
#include <sstream>

#include "analysis/global.h"
#include "analysis/offline_value.h"
#include "common/metrics_registry.h"
#include "common/table.h"
#include "common/trace.h"
#include "common/trace_io.h"
#include "common/trace_stream.h"
#include "exp/metrics.h"
#include "mp/mp_system.h"
#include "mp/overload.h"
#include "sim/simulator.h"

namespace tsf::cli {

namespace {

using common::Duration;

void render_run(std::ostream& os, const CliConfig& config,
                const std::string& label, const model::RunResult& result) {
  os << "--- " << label << " ---\n";
  common::TextTable jobs;
  jobs.add_row({"job", "release", "cost", "outcome", "completion",
                "response"});
  for (const auto& job : result.jobs) {
    jobs.add_row(
        {job.name, common::to_string(job.release),
         common::to_string(job.cost),
         job.served ? "served"
                    : (job.shed ? "shed"
                                : (job.interrupted ? "interrupted"
                                                   : "unserved")),
         job.served ? common::to_string(job.completion) : "-",
         job.served ? common::to_string(job.response()) : "-"});
  }
  os << jobs.to_string();

  const auto metrics = exp::compute_run_metrics(result);
  os << "mean response " << common::fmt_fixed(metrics.mean_response_tu, 2)
     << "tu, served " << metrics.served << "/" << metrics.released
     << ", interrupted " << metrics.interrupted << "\n";

  std::size_t misses = 0;
  for (const auto& p : result.periodic_jobs) misses += p.deadline_missed;
  if (!result.periodic_jobs.empty()) {
    os << "periodic jobs: " << result.periodic_jobs.size()
       << " completions, " << misses << " deadline misses\n";
  }

  if (config.gantt) {
    std::vector<std::string> rows;
    if (config.spec.cores > 1) {
      // Partitioned runs namespace entities per core ("c0/tau1"); take the
      // merged timeline's own rows instead of guessing prefixes.
      rows = result.timeline.entities();
    } else {
      for (const auto& job : config.spec.aperiodic_jobs) {
        rows.push_back(job.name);
      }
      for (const auto& task : config.spec.periodic_tasks) {
        rows.push_back(task.name);
      }
    }
    common::GanttOptions options;
    options.end = config.spec.horizon;
    const auto span = config.spec.horizon - common::TimePoint::origin();
    options.cell = common::max(Duration::ticks(span.count() / 72),
                               Duration::ticks(250));
    os << render_gantt(result.timeline, rows, options);
  }
  os << '\n';
}

// Partition table + per-core feasibility for a multi-core run.
void render_partition(std::ostream& os, const CliConfig& config,
                      const mp::MpFeasibility& verdict) {
  os << "--- partition (" << mp::to_string(config.partition) << ", "
     << config.spec.cores << " cores) ---\n";
  common::TextTable table;
  table.add_row({"core", "tasks", "server", "jobs", "util", "rta"});
  for (std::size_t c = 0; c < verdict.partition.cores.size(); ++c) {
    const auto& core = verdict.partition.cores[c];
    std::string tasks;
    for (std::size_t i : core.tasks) {
      if (!tasks.empty()) tasks += ' ';
      tasks += config.spec.periodic_tasks[i].name;
    }
    table.add_row({"c" + std::to_string(c), tasks.empty() ? "-" : tasks,
                   core.has_server ? "yes" : "-",
                   std::to_string(core.jobs.size()),
                   common::fmt_fixed(core.utilization, 3),
                   verdict.per_core.cores[c].feasible ? "ok" : "INFEASIBLE"});
  }
  os << table.to_string();
  for (const auto& rejection : verdict.partition.rejected) {
    os << "rejected: " << rejection.item.name << " (u="
       << common::fmt_fixed(rejection.item.utilization, 3) << ") — "
       << rejection.reason << '\n';
  }
  os << "system verdict: " << (verdict.feasible ? "feasible" : "INFEASIBLE")
     << '\n';
  if (config.policy != mp::SchedPolicy::kPartitioned) {
    os << "scheduling policy: " << mp::to_string(config.policy) << '\n';
    // The comparison verdict: would the periodic load also be schedulable
    // under global fixed priorities on this many cores?
    const auto global = analysis::analyze_global(
        config.spec.periodic_tasks,
        static_cast<std::size_t>(config.spec.cores), &config.spec.server);
    common::Duration worst = common::Duration::zero();
    for (const auto& r : global.response_times) {
      if (r.has_value()) worst = common::max(worst, *r);
    }
    os << "global RTA (Bertogna-style bound): "
       << (global.feasible ? "feasible" : "INFEASIBLE");
    if (global.feasible && !config.spec.periodic_tasks.empty()) {
      os << ", worst response " << common::to_string(worst);
    }
    os << '\n';
  }
  os << '\n';
}

void write_vcd(std::ostream& os, const std::string& path,
               const common::Timeline& timeline,
               const std::vector<std::string>& rows) {
  std::ofstream vcd(path);
  if (vcd) {
    vcd << common::to_vcd(timeline, rows);
    os << "execution trace written to " << path << " (VCD)\n";
  } else {
    os << "error: cannot write " << path << '\n';
  }
}

void write_trace_file(std::ostream& os, const std::string& path,
                      const common::Timeline& timeline) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    os << "error: cannot write " << path << '\n';
    return;
  }
  common::write_trace(out, timeline);
  os << "execution trace written to " << path << " (tsf-trace/1, "
     << out.tellp() << " bytes)\n";
}

// Replays the materialized timeline through the streaming consumer and
// folds the aggregates into the registry next to whatever counters the
// runtime itself contributed.
void fold_trace_summary(const common::Timeline& timeline,
                        common::MetricsRegistry* metrics) {
  common::StreamingTraceMetrics summary;
  for (const auto& r : timeline.records()) {
    summary.record(r.at, r.kind, r.who, r.value, r.note);
  }
  summary.finish();
  metrics->add_counter("trace.records", summary.records());
  metrics->add_counter("trace.entities", summary.entity_count());
  for (std::size_t k = 0; k < common::kTraceKindCount; ++k) {
    const auto kind = static_cast<common::TraceKind>(k);
    if (summary.kind_count(kind) > 0) {
      metrics->add_counter(std::string("trace.kind.") + common::to_string(kind),
                           summary.kind_count(kind));
    }
  }
  const double per_tu = common::Duration::kTicksPerTimeUnit;
  metrics->set_gauge("trace.span_tu",
                     static_cast<double>(summary.last_ticks() -
                                         summary.first_ticks()) /
                         per_tu);
  metrics->set_gauge("trace.busy_tu",
                     static_cast<double>(summary.busy_ticks()) / per_tu);
  const auto& stats = summary.response_stats();
  if (!stats.empty()) {
    metrics->add_counter("trace.responses", stats.count());
    metrics->set_gauge("trace.response.mean_tu", stats.mean());
    metrics->set_gauge("trace.response.p50_tu",
                       summary.response_sketch().p50());
    metrics->set_gauge("trace.response.p95_tu",
                       summary.response_sketch().p95());
    metrics->set_gauge("trace.response.p99_tu",
                       summary.response_sketch().p99());
  }
}

void write_metrics_file(std::ostream& os, const std::string& path,
                        const common::MetricsRegistry& metrics) {
  const std::string doc = metrics.to_json();
  if (path == "-") {
    os << doc;
    return;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    os << "error: cannot write " << path << '\n';
    return;
  }
  out << doc;
  os << "metrics written to " << path << " (tsf-metrics/1)\n";
}

}  // namespace

std::string run_and_report(const CliConfig& config) {
  std::ostringstream os;
  os << "system: " << config.spec.periodic_tasks.size() << " periodic task(s), "
     << config.spec.aperiodic_jobs.size() << " aperiodic job(s), "
     << model::to_string(config.spec.server.policy) << " server "
     << common::to_string(config.spec.server.capacity) << "/"
     << common::to_string(config.spec.server.period) << ", horizon "
     << common::to_string(config.spec.horizon) << "\n\n";

  if (config.spec.cores > 1) {
    // Pack once; analysis, sim and exec all use the same assignment.
    const auto verdict = mp::analyze(config.spec, config.partition);
    render_partition(os, config, verdict);
    mp::MpRunOptions mp_options;
    mp_options.strategy = config.partition;
    mp_options.policy = config.policy;
    mp_options.backend = config.backend;
    mp_options.exec = config.exec_options;
    mp_options.quantum = config.quantum;
    mp_options.rebalance = config.rebalance;
    if (config.mode == RunMode::kSim || config.mode == RunMode::kBoth) {
      mp::MpRunOptions sim_options = mp_options;
      sim_options.engine = mp::RunEngine::kSim;
      const auto run = mp::run(config.spec, verdict.partition, sim_options);
      render_run(os, config, "partitioned simulation", run.merged);
      if (config.spec.uses_channels()) {
        os << "note: the simulator has no channel fabric — triggered and"
              " migratable jobs stay unserved, fires are ignored\n\n";
      }
      if (config.policy != mp::SchedPolicy::kPartitioned) {
        os << "note: the simulator always runs the static partition — the "
           << mp::to_string(config.policy)
           << " policy applies to the execution engine only\n\n";
      }
      if (config.rebalance.mode != mp::RebalanceMode::kOff) {
        os << "note: the simulator never rebalances — rebalance = "
           << mp::to_string(config.rebalance.mode)
           << " applies to the execution engine only\n\n";
      }
    }
    if (config.mode == RunMode::kExec || config.mode == RunMode::kBoth) {
      common::MetricsRegistry metrics;
      if (!config.metrics_json_path.empty()) {
        mp_options.metrics = &metrics;
      }
      // The threads backend measures wall-clock throughput; always collect
      // metrics for it so the report can show the measurement even without
      // --metrics-json.
      if (config.backend == mp::ExecBackend::kThreads) {
        mp_options.metrics = &metrics;
      }
      const auto run = mp::run(config.spec, verdict.partition, mp_options);
      const std::string substrate =
          config.backend == mp::ExecBackend::kThreads
              ? "pinned worker threads"
              : "lock-step VMs";
      const std::string exec_label =
          config.policy == mp::SchedPolicy::kPartitioned
              ? "partitioned execution (" + substrate + ")"
              : std::string(mp::to_string(config.policy)) + " execution (" +
                    substrate + ")";
      render_run(os, config, exec_label, run.merged);
      if (config.backend == mp::ExecBackend::kThreads) {
        os << "threads backend: wall "
           << common::fmt_fixed(metrics.gauge("threads.wall_seconds") * 1e3, 2)
           << "ms, " << common::fmt_fixed(
                  metrics.gauge("threads.events_per_sec") / 1e3, 1)
           << "k events/s, "
           << static_cast<std::size_t>(metrics.gauge("threads.workers_pinned"))
           << "/" << config.spec.cores << " workers pinned\n";
      }
      if (!run.channel_deliveries.empty() || run.channel_in_flight > 0 ||
          config.policy != mp::SchedPolicy::kPartitioned) {
        const auto ch = exp::compute_channel_metrics(run.channel_deliveries,
                                                     run.merged);
        os << "cross-core channels: " << ch.delivered << " delivered, "
           << ch.failed << " failed, " << run.channel_in_flight
           << " in flight at horizon\n";
        if (ch.delivered > 0) {
          os << "channel latency (quantum "
             << common::to_string(config.quantum) << "): mean "
             << common::fmt_fixed(ch.latency_mean_tu, 2) << "tu, p50 "
             << common::fmt_fixed(ch.latency_p50_tu, 2) << "tu, p95 "
             << common::fmt_fixed(ch.latency_p95_tu, 2) << "tu, p99 "
             << common::fmt_fixed(ch.latency_p99_tu, 2) << "tu\n";
        }
        if (ch.e2e_samples > 0) {
          os << "cross-core response (post to completion): p50 "
             << common::fmt_fixed(ch.e2e_p50_tu, 2) << "tu, p95 "
             << common::fmt_fixed(ch.e2e_p95_tu, 2) << "tu, p99 "
             << common::fmt_fixed(ch.e2e_p99_tu, 2) << "tu\n";
        }
        if (config.policy != mp::SchedPolicy::kPartitioned) {
          os << "scheduling (" << mp::to_string(config.policy) << "): "
             << ch.pool_dispatches << " pool dispatches, " << ch.steals
             << " steals";
          if (ch.pool_dispatches + ch.steals > 0) {
            os << ", wait mean "
               << common::fmt_fixed(ch.sched_wait_mean_tu, 2) << "tu, p99 "
               << common::fmt_fixed(ch.sched_wait_p99_tu, 2) << "tu";
          }
          os << '\n';
        }
      }
      if (config.rebalance.mode != mp::RebalanceMode::kOff) {
        os << "rebalancing (" << mp::to_string(config.rebalance.mode)
           << ", drift " << common::fmt_fixed(config.rebalance.drift, 2)
           << ", period " << common::to_string(config.rebalance.period)
           << "): " << run.rebalance_passes << " passes, "
           << run.rebalance_migrations << " migrations, "
           << run.rebalance_admissions << " admissions";
        if (run.rebalance_still_rejected > 0) {
          os << ", " << run.rebalance_still_rejected << " still rejected";
        }
        os << "\npost-rebalance utilization:";
        for (std::size_t c = 0; c < run.rebalance_utilization.size(); ++c) {
          os << " c" << c << "="
             << common::fmt_fixed(run.rebalance_utilization[c], 3);
        }
        os << '\n';
      }
      if (config.exec_options.overload.enabled()) {
        const auto& ov = config.exec_options.overload;
        os << "overload (" << exp::to_string(ov.mode) << ", threshold "
           << common::fmt_fixed(ov.threshold, 2) << ", period "
           << common::to_string(ov.period) << "): " << run.sheds
           << " shed, " << run.takeovers << " takeovers";
        if (ov.mode == exp::OverloadMode::kShed) {
          os << ", " << run.overload_passes << " passes";
        }
        os << '\n';
        std::size_t serving = 0;
        for (const auto& core : run.partition.cores) {
          if (core.has_server) ++serving;
        }
        const auto accrual = analysis::compute_value_accrual(
            config.spec, run.merged, serving);
        os << "value accrual: " << common::fmt_fixed(accrual.accrued, 2)
           << " of clairvoyant bound "
           << common::fmt_fixed(accrual.bound, 2) << " (ratio "
           << common::fmt_fixed(accrual.ratio, 3) << ")\n";
        const auto violations = mp::check_overload_invariants(config.spec,
                                                              run);
        if (violations.empty()) {
          os << "forbidden-behavior check: clean ("
             << "serve-after-shed, shed-admitted-work, shed-ledger, "
                "admitted-deadline-miss)\n";
        } else {
          os << "forbidden-behavior check: " << violations.size()
             << " VIOLATION(S)\n";
          for (const auto& v : violations) {
            os << "  " << v.name << ": " << v.detail << '\n';
          }
        }
      }
      os << "trace fingerprint: " << std::hex
         << common::fingerprint(run.merged.timeline) << std::dec << "\n";
      if (!config.vcd_path.empty()) {
        write_vcd(os, config.vcd_path, run.merged.timeline,
                  run.merged.timeline.entities());
      }
      if (!config.trace_path.empty()) {
        write_trace_file(os, config.trace_path, run.merged.timeline);
      }
      if (!config.metrics_json_path.empty()) {
        fold_trace_summary(run.merged.timeline, &metrics);
        write_metrics_file(os, config.metrics_json_path, metrics);
      }
    }
    return os.str();
  }

  if (config.mode == RunMode::kSim || config.mode == RunMode::kBoth) {
    render_run(os, config, "simulation (theoretical policies)",
               sim::simulate(config.spec));
    if (config.spec.uses_channels()) {
      os << "note: the simulator has no channel fabric — triggered jobs"
            " stay unserved and fires are ignored\n\n";
    }
  }
  if (config.mode == RunMode::kExec || config.mode == RunMode::kBoth) {
    const auto result = exp::run_exec(config.spec, config.exec_options);
    render_run(os, config, "execution (RTSJ-style runtime)", result);
    if (!config.vcd_path.empty()) {
      std::vector<std::string> rows;
      for (const auto& job : config.spec.aperiodic_jobs) {
        rows.push_back(job.name);
      }
      for (const auto& task : config.spec.periodic_tasks) {
        rows.push_back(task.name);
      }
      write_vcd(os, config.vcd_path, result.timeline, rows);
    }
    if (!config.trace_path.empty()) {
      write_trace_file(os, config.trace_path, result.timeline);
    }
    if (!config.metrics_json_path.empty()) {
      common::MetricsRegistry metrics;
      fold_trace_summary(result.timeline, &metrics);
      write_metrics_file(os, config.metrics_json_path, metrics);
    }
  }
  return os.str();
}

}  // namespace tsf::cli
