// Run + report rendering for the tsf_run tool (kept in the library so the
// output format is testable).
#pragma once

#include <string>

#include "cli/spec_file.h"

namespace tsf::cli {

// Runs the configured system on the requested engine(s) and renders a full
// report: per-job outcomes, AART/AIR/ASR, optional Gantt charts.
std::string run_and_report(const CliConfig& config);

}  // namespace tsf::cli
