// Text spec files for the tsf_run tool.
//
// A small INI-style format describing one system: the server, periodic
// tasks, aperiodic jobs and run options. Times are in paper time units
// (fractions allowed; resolution 0.001 tu). Example:
//
//     [server]
//     policy   = polling          # none|background|polling|deferrable|sporadic
//     capacity = 3
//     period   = 6
//     priority = 30
//     queue    = first-fit        # fifo|first-fit|list-of-lists
//
//     [task tau1]
//     period   = 6
//     cost     = 2
//     priority = 20
//     affinity = 0                # optional core pin (multi-core runs)
//
//     [job h1]
//     release  = 2
//     cost     = 2
//     declared = 2                # optional, defaults to cost
//     affinity = 1                # optional core routing (multi-core runs)
//     fires    = h2               # fire job h2's event on completion
//     migrate  = yes              # released on the least-loaded core
//
//     [job h2]
//     triggered = yes             # no release timer; released by a fire
//     cost      = 1
//
//     [run]
//     horizon  = 18
//     mode     = both             # sim|exec|both
//     overheads = ideal           # ideal|paper
//     cores    = 4                # optional; > 1 → partitioned runtime
//     partition = ffd             # ffd|wfd|bfd bin-packing heuristic
//     policy   = semi             # partitioned|global|semi job scheduling
//     backend  = threads          # lockstep|threads execution substrate
//     quantum  = 0.5              # lock-step epoch of the multi-core VMs
//     channel_latency = 0.25      # min cross-core message in-flight time
//     rebalance = drift           # off|drift|admit online load rebalancing
//     rebalance_drift = 0.25      # measured-vs-packed utilization trigger
//     rebalance_period = 6        # window + min gap between passes (tu)
//     overload = shed             # off|shed|dover overload policy
//     overload_threshold = 0.75   # measured-utilization shed trigger
//     overload_period = 6         # shed window + min gap between passes (tu)
#pragma once

#include <string>
#include <vector>

#include "exp/exec_runner.h"
#include "exp/tables.h"
#include "model/spec.h"
#include "mp/mp_system.h"
#include "mp/partition.h"
#include "mp/rebalance.h"
#include "mp/sched_policy.h"

namespace tsf::cli {

enum class RunMode { kSim, kExec, kBoth };

struct CliConfig {
  model::SystemSpec spec;
  RunMode mode = RunMode::kBoth;
  exp::ExecOptions exec_options;  // ideal by default
  bool gantt = true;
  // When non-empty, the execution timeline is also written as a value
  // change dump (one wire per task/job) for waveform viewers.
  std::string vcd_path;
  // When non-empty, the execution trace is also written as a tsf-trace/1
  // binary append file (inspect with tools/tsf_trace).
  std::string trace_path;
  // When non-empty, runtime counters and trace aggregates are written as a
  // tsf-metrics/1 JSON document ('-' writes to stdout after the report).
  std::string metrics_json_path;
  // Bin-packing heuristic for multi-core specs (spec.cores > 1).
  mp::PackingStrategy partition = mp::PackingStrategy::kFirstFitDecreasing;
  // Run-time job scheduling across cores (exec path of multi-core specs):
  // the static partition, a global shared ready pool, or semi-partitioned
  // work stealing.
  mp::SchedPolicy policy = mp::SchedPolicy::kPartitioned;
  // Execution substrate (exec path of multi-core specs): the deterministic
  // lock-step oracle, or one pinned OS worker thread per core measuring
  // wall-clock throughput (same virtual-time results, cross-validated).
  mp::ExecBackend backend = mp::ExecBackend::kLockstep;
  // Lock-step epoch of the partitioned execution (mp::MultiVm). Also the
  // granularity at which cross-core channel messages are delivered.
  common::Duration quantum = common::Duration::time_units(1);
  // Online load rebalancing at the epoch boundaries (exec path of
  // multi-core specs): off, drift-triggered migration of pending work, or
  // drift + online admission of offline-rejected tasks.
  mp::RebalanceConfig rebalance;
};

struct ParseOutcome {
  CliConfig config;
  std::vector<std::string> errors;  // empty on success
  bool ok() const { return errors.empty(); }
};

// Parses the spec-file text. All errors are collected (with line numbers),
// not just the first.
ParseOutcome parse_spec(const std::string& content);

// Reads and parses a file; a read failure becomes a parse error.
ParseOutcome load_spec_file(const std::string& path);

}  // namespace tsf::cli
