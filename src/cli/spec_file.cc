#include "cli/spec_file.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <initializer_list>
#include <set>
#include <sstream>
#include <vector>

namespace tsf::cli {

namespace {

using common::Duration;
using common::TimePoint;

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

// Strips a trailing "# comment".
std::string strip_comment(const std::string& s) {
  const auto hash = s.find('#');
  return hash == std::string::npos ? s : s.substr(0, hash);
}

// Levenshtein distance, for close-typo detection on key names.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

// " — did you mean 'X'?" when a known key is within edit distance 2 of the
// typo ("overlaod" → "overload"), empty otherwise. Ties go to the first
// candidate listed.
std::string suggest(const std::string& key,
                    std::initializer_list<const char*> known) {
  const char* best = nullptr;
  std::size_t best_distance = 3;
  for (const char* candidate : known) {
    const std::size_t d = edit_distance(key, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best == nullptr ? ""
                         : std::string(" -- did you mean '") + best + "'?";
}

struct Parser {
  ParseOutcome out;
  // current section
  enum class Section { kNone, kServer, kTask, kJob, kRun } section =
      Section::kNone;
  model::PeriodicTaskSpec* task = nullptr;
  model::AperiodicJobSpec* job = nullptr;
  bool saw_horizon = false;
  // Job names whose [job] section set an explicit release (a triggered job
  // must not have one — its release comes from a cross-core fire).
  std::set<std::string> jobs_with_release;

  void error(int line, const std::string& message) {
    out.errors.push_back("line " + std::to_string(line) + ": " + message);
  }

  bool parse_double(int line, const std::string& value, double* dst) {
    const std::string v = trim(value);
    const char* first = v.data();
    const char* last = v.data() + v.size();
    const auto result = std::from_chars(first, last, *dst);
    if (result.ec != std::errc{} || result.ptr != last) {
      error(line, "expected a number, got '" + v + "'");
      return false;
    }
    return true;
  }

  bool parse_duration(int line, const std::string& value, Duration* dst) {
    double tu = 0.0;
    if (!parse_double(line, value, &tu)) return false;
    if (tu < 0.0) {
      error(line, "durations must be non-negative");
      return false;
    }
    *dst = Duration::from_tu(tu);
    return true;
  }

  bool parse_int(int line, const std::string& value, int* dst) {
    double x = 0.0;
    if (!parse_double(line, value, &x)) return false;
    *dst = static_cast<int>(x);
    return true;
  }

  bool parse_bool(int line, const std::string& value, bool* dst) {
    if (value == "yes" || value == "true") {
      *dst = true;
      return true;
    }
    if (value == "no" || value == "false") {
      *dst = false;
      return true;
    }
    // A typo ('ture', '1') must not silently mean "no".
    error(line, "expected yes|no, got '" + value + "'");
    return false;
  }

  void open_section(int line, const std::string& header) {
    task = nullptr;
    job = nullptr;
    std::istringstream iss(header);
    std::string kind, name;
    iss >> kind;
    std::getline(iss, name);
    name = trim(name);
    if (kind == "server") {
      section = Section::kServer;
    } else if (kind == "run") {
      section = Section::kRun;
    } else if (kind == "task") {
      if (name.empty()) {
        error(line, "[task] needs a name: [task tau1]");
        section = Section::kNone;
        return;
      }
      section = Section::kTask;
      out.config.spec.periodic_tasks.emplace_back();
      task = &out.config.spec.periodic_tasks.back();
      task->name = name;
    } else if (kind == "job") {
      if (name.empty()) {
        error(line, "[job] needs a name: [job h1]");
        section = Section::kNone;
        return;
      }
      section = Section::kJob;
      out.config.spec.aperiodic_jobs.emplace_back();
      job = &out.config.spec.aperiodic_jobs.back();
      job->name = name;
    } else {
      error(line, "unknown section '" + kind + "'");
      section = Section::kNone;
    }
  }

  void server_key(int line, const std::string& key, const std::string& value) {
    auto& server = out.config.spec.server;
    if (key == "policy") {
      if (value == "none") {
        server.policy = model::ServerPolicy::kNone;
      } else if (value == "background") {
        server.policy = model::ServerPolicy::kBackground;
      } else if (value == "polling") {
        server.policy = model::ServerPolicy::kPolling;
      } else if (value == "deferrable") {
        server.policy = model::ServerPolicy::kDeferrable;
      } else if (value == "sporadic") {
        server.policy = model::ServerPolicy::kSporadic;
      } else {
        error(line, "unknown policy '" + value +
                        "' (none|background|polling|deferrable|sporadic)");
      }
    } else if (key == "capacity") {
      parse_duration(line, value, &server.capacity);
    } else if (key == "period") {
      parse_duration(line, value, &server.period);
    } else if (key == "priority") {
      parse_int(line, value, &server.priority);
    } else if (key == "margin") {
      parse_duration(line, value, &server.admission_margin);
    } else if (key == "strict") {
      parse_bool(line, value, &server.strict_capacity);
    } else if (key == "queue") {
      if (value == "fifo") {
        server.queue = model::QueueDiscipline::kStrictFifo;
      } else if (value == "first-fit") {
        server.queue = model::QueueDiscipline::kFifoFirstFit;
      } else if (value == "list-of-lists") {
        server.queue = model::QueueDiscipline::kListOfLists;
      } else {
        error(line, "unknown queue discipline '" + value +
                        "' (fifo|first-fit|list-of-lists)");
      }
    } else {
      error(line, "unknown server key '" + key + "'" +
                      suggest(key, {"policy", "capacity", "period", "priority",
                                    "margin", "strict", "queue"}));
    }
  }

  void task_key(int line, const std::string& key, const std::string& value) {
    if (key == "period") {
      parse_duration(line, value, &task->period);
    } else if (key == "cost") {
      parse_duration(line, value, &task->cost);
    } else if (key == "deadline") {
      parse_duration(line, value, &task->deadline);
    } else if (key == "priority") {
      parse_int(line, value, &task->priority);
    } else if (key == "start") {
      Duration offset;
      if (parse_duration(line, value, &offset)) {
        task->start = TimePoint::origin() + offset;
      }
    } else if (key == "affinity") {
      int core = -1;
      if (parse_int(line, value, &core)) {
        if (core < 0) {
          error(line, "affinity must be a core index (>= 0)");
        } else {
          task->affinity = core;
        }
      }
    } else {
      error(line, "unknown task key '" + key + "'" +
                      suggest(key, {"period", "cost", "deadline", "priority",
                                    "start", "affinity"}));
    }
  }

  void job_key(int line, const std::string& key, const std::string& value) {
    if (key == "release") {
      Duration offset;
      if (parse_duration(line, value, &offset)) {
        job->release = TimePoint::origin() + offset;
        jobs_with_release.insert(job->name);
      }
    } else if (key == "fires") {
      if (value.empty()) {
        error(line, "fires needs a job name");
      } else {
        job->fires = value;
      }
    } else if (key == "triggered") {
      parse_bool(line, value, &job->triggered);
    } else if (key == "migrate") {
      parse_bool(line, value, &job->migrate);
    } else if (key == "cost") {
      parse_duration(line, value, &job->cost);
    } else if (key == "declared") {
      parse_duration(line, value, &job->declared_cost);
    } else if (key == "deadline") {
      parse_duration(line, value, &job->relative_deadline);
    } else if (key == "value") {
      parse_double(line, value, &job->value);
    } else if (key == "affinity") {
      int core = -1;
      if (parse_int(line, value, &core)) {
        if (core < 0) {
          error(line, "affinity must be a core index (>= 0)");
        } else {
          job->affinity = core;
        }
      }
    } else {
      error(line, "unknown job key '" + key + "'" +
                      suggest(key, {"release", "fires", "triggered", "migrate",
                                    "cost", "declared", "deadline", "value",
                                    "affinity"}));
    }
  }

  void run_key(int line, const std::string& key, const std::string& value) {
    if (key == "horizon") {
      Duration h;
      if (parse_duration(line, value, &h)) {
        out.config.spec.horizon = TimePoint::origin() + h;
        saw_horizon = true;
      }
    } else if (key == "mode") {
      if (value == "sim") {
        out.config.mode = RunMode::kSim;
      } else if (value == "exec") {
        out.config.mode = RunMode::kExec;
      } else if (value == "both") {
        out.config.mode = RunMode::kBoth;
      } else {
        error(line, "unknown mode '" + value + "' (sim|exec|both)");
      }
    } else if (key == "overheads") {
      // The profile replaces the whole ExecOptions block; the overload
      // policy and the batch limit are orthogonal and must survive either
      // key order.
      const exp::OverloadConfig overload = out.config.exec_options.overload;
      const int batch = out.config.exec_options.batch;
      if (value == "ideal") {
        out.config.exec_options = exp::ideal_execution_options();
      } else if (value == "paper") {
        out.config.exec_options = exp::paper_execution_options();
      } else {
        error(line, "unknown overheads profile '" + value + "' (ideal|paper)");
      }
      out.config.exec_options.overload = overload;
      out.config.exec_options.batch = batch;
    } else if (key == "batch") {
      int batch = 1;
      if (parse_int(line, value, &batch)) {
        if (batch < 1) {
          error(line, "batch must be at least 1 (1 = per-event dispatch)");
        } else {
          out.config.exec_options.batch = batch;
        }
      }
    } else if (key == "gantt") {
      parse_bool(line, value, &out.config.gantt);
    } else if (key == "cores") {
      int cores = 1;
      if (parse_int(line, value, &cores)) {
        if (cores < 1) {
          error(line, "cores must be at least 1");
        } else {
          out.config.spec.cores = cores;
        }
      }
    } else if (key == "quantum") {
      Duration q;
      if (parse_duration(line, value, &q)) {
        if (q.is_zero()) {
          error(line, "quantum must be positive");
        } else {
          out.config.quantum = q;
        }
      }
    } else if (key == "channel_latency") {
      parse_duration(line, value, &out.config.spec.channel_latency);
    } else if (key == "policy") {
      const auto policy = mp::parse_sched_policy(value);
      if (policy.has_value()) {
        out.config.policy = *policy;
      } else {
        error(line, "unknown scheduling policy '" + value +
                        "' (partitioned|global|semi)");
      }
    } else if (key == "backend") {
      const auto backend = mp::parse_exec_backend(value);
      if (backend.has_value()) {
        out.config.backend = *backend;
      } else {
        error(line, "unknown backend '" + value + "' (lockstep|threads)");
      }
    } else if (key == "rebalance") {
      const auto mode = mp::parse_rebalance_mode(value);
      if (mode.has_value()) {
        out.config.rebalance.mode = *mode;
      } else {
        error(line, "unknown rebalance mode '" + value + "' (off|drift|admit)");
      }
    } else if (key == "rebalance_drift") {
      double drift = 0.0;
      if (parse_double(line, value, &drift)) {
        if (drift <= 0.0) {
          error(line, "rebalance_drift must be positive");
        } else {
          out.config.rebalance.drift = drift;
        }
      }
    } else if (key == "rebalance_period") {
      Duration period;
      if (parse_duration(line, value, &period)) {
        if (period.is_zero()) {
          error(line, "rebalance_period must be positive");
        } else {
          out.config.rebalance.period = period;
        }
      }
    } else if (key == "overload") {
      const auto mode = exp::parse_overload_mode(value);
      if (mode.has_value()) {
        out.config.exec_options.overload.mode = *mode;
      } else {
        error(line, "unknown overload mode '" + value + "' (off|shed|dover)");
      }
    } else if (key == "overload_threshold") {
      double threshold = 0.0;
      if (parse_double(line, value, &threshold)) {
        if (threshold <= 0.0) {
          error(line, "overload_threshold must be positive");
        } else {
          out.config.exec_options.overload.threshold = threshold;
        }
      }
    } else if (key == "overload_period") {
      Duration period;
      if (parse_duration(line, value, &period)) {
        if (period.is_zero()) {
          error(line, "overload_period must be positive");
        } else {
          out.config.exec_options.overload.period = period;
        }
      }
    } else if (key == "partition") {
      if (value == "ffd" || value == "first-fit") {
        out.config.partition = mp::PackingStrategy::kFirstFitDecreasing;
      } else if (value == "wfd" || value == "worst-fit") {
        out.config.partition = mp::PackingStrategy::kWorstFitDecreasing;
      } else if (value == "bfd" || value == "best-fit") {
        out.config.partition = mp::PackingStrategy::kBestFitDecreasing;
      } else {
        error(line, "unknown partition heuristic '" + value +
                        "' (ffd|wfd|bfd|first-fit|worst-fit|best-fit)");
      }
    } else {
      error(line, "unknown run key '" + key + "'" +
                      suggest(key, {"horizon", "mode", "overheads", "batch",
                                    "gantt", "cores", "quantum",
                                    "channel_latency", "policy", "backend",
                                    "rebalance", "rebalance_drift",
                                    "rebalance_period", "overload",
                                    "overload_threshold", "overload_period",
                                    "partition"}));
    }
  }

  void key_value(int line, const std::string& key, const std::string& value) {
    switch (section) {
      case Section::kServer:
        server_key(line, key, value);
        break;
      case Section::kTask:
        task_key(line, key, value);
        break;
      case Section::kJob:
        job_key(line, key, value);
        break;
      case Section::kRun:
        run_key(line, key, value);
        break;
      case Section::kNone:
        error(line, "key outside of any section");
        break;
    }
  }

  void finish() {
    if (!saw_horizon) {
      out.errors.push_back("missing [run] horizon");
    }
    for (const auto& t : out.config.spec.periodic_tasks) {
      if (t.affinity >= out.config.spec.cores) {
        out.errors.push_back("task '" + t.name + "' is pinned to core " +
                             std::to_string(t.affinity) + " but the run has " +
                             std::to_string(out.config.spec.cores) +
                             " core(s)");
      }
    }
    for (const auto& j : out.config.spec.aperiodic_jobs) {
      if (j.affinity >= out.config.spec.cores) {
        out.errors.push_back("job '" + j.name + "' is pinned to core " +
                             std::to_string(j.affinity) + " but the run has " +
                             std::to_string(out.config.spec.cores) +
                             " core(s)");
      }
    }
    if (out.config.policy != mp::SchedPolicy::kPartitioned &&
        out.config.spec.cores <= 1) {
      out.errors.push_back(std::string("scheduling policy '") +
                           mp::to_string(out.config.policy) +
                           "' needs a multi-core run (cores > 1)");
    }
    if (out.config.backend == mp::ExecBackend::kThreads) {
      // The threads backend is the multi-core execution substrate; a
      // uniprocessor or sim-only run never reaches it, so a spec asking for
      // it there is a mistake worth flagging, not silently ignoring.
      if (out.config.spec.cores <= 1) {
        out.errors.push_back(
            "backend = threads needs a multi-core run (cores > 1)");
      }
      if (out.config.mode == RunMode::kSim) {
        out.errors.push_back(
            "backend = threads applies to the execution engine (mode = "
            "exec|both)");
      }
    }
    if (out.config.exec_options.batch > 1 &&
        out.config.mode == RunMode::kSim) {
      // The simulator has no dispatch overhead to amortize; a batch > 1 in
      // a sim-only run is a mistake worth flagging, not silently ignoring.
      out.errors.push_back(
          "batch applies to the execution engine (mode = exec|both)");
    }
    if (out.config.rebalance.mode != mp::RebalanceMode::kOff &&
        out.config.spec.cores <= 1) {
      out.errors.push_back(std::string("rebalance '") +
                           mp::to_string(out.config.rebalance.mode) +
                           "' needs a multi-core run (cores > 1)");
    }
    if (out.config.exec_options.overload.enabled()) {
      // Both overload policies live in the partitioned execution runtime:
      // shed is an epoch-boundary governor, dover a per-core exec queue.
      if (out.config.spec.cores <= 1) {
        out.errors.push_back(
            std::string("overload '") +
            exp::to_string(out.config.exec_options.overload.mode) +
            "' needs a multi-core run (cores > 1)");
      }
      if (out.config.mode == RunMode::kSim) {
        out.errors.push_back(
            "overload policies apply to the execution engine (mode = "
            "exec|both)");
      }
    }
    const auto& server = out.config.spec.server;
    if (server.policy != model::ServerPolicy::kNone &&
        (server.capacity.is_zero() || server.period.is_zero())) {
      out.errors.push_back("server needs a positive capacity and period");
    }
    for (const auto& t : out.config.spec.periodic_tasks) {
      if (t.period.is_zero() || t.cost.is_zero()) {
        out.errors.push_back("task '" + t.name +
                             "' needs a positive period and cost");
      }
    }
    for (const auto& j : out.config.spec.aperiodic_jobs) {
      if (j.cost.is_zero()) {
        out.errors.push_back("job '" + j.name + "' needs a positive cost");
      }
    }

    // Channel semantics: fires targets must resolve, and the channel roles
    // must be consistent (routing is by job name, so names must be unique).
    std::set<std::string> names;
    for (const auto& j : out.config.spec.aperiodic_jobs) {
      if (!names.insert(j.name).second) {
        out.errors.push_back("duplicate job name '" + j.name + "'");
      }
    }
    const bool has_channel_jobs = out.config.spec.uses_channels();
    if (has_channel_jobs &&
        out.config.spec.server.policy == model::ServerPolicy::kNone) {
      out.errors.push_back(
          "fires/triggered/migrate jobs need an aperiodic server");
    }
    for (const auto& j : out.config.spec.aperiodic_jobs) {
      if (!j.fires.empty()) {
        if (j.fires == j.name) {
          out.errors.push_back("job '" + j.name + "' cannot fire itself");
        } else if (names.find(j.fires) == names.end()) {
          out.errors.push_back("job '" + j.name + "' fires unknown job '" +
                               j.fires + "'");
        }
      }
      if (j.triggered && jobs_with_release.count(j.name) > 0) {
        out.errors.push_back("triggered job '" + j.name +
                             "' cannot also have a release");
      }
      if (j.migrate && j.triggered) {
        out.errors.push_back("job '" + j.name +
                             "' cannot be both migrate and triggered");
      }
      if (j.migrate && j.affinity >= 0) {
        out.errors.push_back("job '" + j.name +
                             "' cannot both migrate and pin an affinity");
      }
    }
  }
};

}  // namespace

ParseOutcome parse_spec(const std::string& content) {
  Parser parser;
  std::istringstream stream(content);
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    const std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        parser.error(line_no, "unterminated section header");
        continue;
      }
      parser.open_section(line_no, line.substr(1, line.size() - 2));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      parser.error(line_no, "expected 'key = value'");
      continue;
    }
    parser.key_value(line_no, trim(line.substr(0, eq)),
                     trim(line.substr(eq + 1)));
  }
  parser.finish();
  return std::move(parser.out);
}

ParseOutcome load_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParseOutcome out;
    out.errors.push_back("cannot open '" + path + "'");
    return out;
  }
  std::ostringstream content;
  content << in.rdbuf();
  return parse_spec(content.str());
}

}  // namespace tsf::cli
